"""JSON round-tripping for everything a campaign ships across processes.

``CoreStats`` (with its ``StoreRecord``/``RegionRecord`` logs) serializes
via the methods on the dataclasses themselves; this module adds the
surrounding pieces — ``SystemConfig``, ``WorkloadProfile``, persist-op
logs, and whole worker payloads — and the canonical key material that the
content-addressed cache hashes.

Everything is strict JSON (``allow_nan=False``): non-finite floats are
encoded as the strings ``"inf"``/``"-inf"``/``"nan"`` by
:func:`repro.pipeline.stats.encode_float`.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.config import (
    CacheConfig,
    CoreConfig,
    DramCacheConfig,
    MemoryConfig,
    NvmConfig,
    PpaConfig,
    SystemConfig,
)
from repro.memory.writebuffer import PersistOp
from repro.pipeline.stats import decode_float, encode_float
from repro.statsbase import (
    StatsBase,
    sim_volume,
    stats_from_dict,
    stats_to_dict,
)
from repro.workloads.profiles import MemRegion, WorkloadProfile

from repro.orchestrator.points import SimPoint


# ---------------------------------------------------------------------------
# Configurations and profiles
# ---------------------------------------------------------------------------

def config_to_dict(config: SystemConfig) -> dict[str, Any]:
    return dataclasses.asdict(config)


def config_from_dict(data: dict[str, Any]) -> SystemConfig:
    memory = dict(data["memory"])
    memory["l1i"] = CacheConfig(**memory["l1i"])
    memory["l1d"] = CacheConfig(**memory["l1d"])
    memory["l2"] = CacheConfig(**memory["l2"])
    memory["l3"] = (CacheConfig(**memory["l3"])
                    if memory["l3"] is not None else None)
    memory["dram_cache"] = (DramCacheConfig(**memory["dram_cache"])
                            if memory["dram_cache"] is not None else None)
    memory["nvm"] = NvmConfig(**memory["nvm"])
    return SystemConfig(
        core=CoreConfig(**data["core"]),
        memory=MemoryConfig(**memory),
        ppa=PpaConfig(**data["ppa"]),
        num_cores=data["num_cores"],
        free_reg_sample_stride=data["free_reg_sample_stride"],
    )


def profile_to_dict(profile: WorkloadProfile) -> dict[str, Any]:
    return dataclasses.asdict(profile)


def profile_from_dict(data: dict[str, Any]) -> WorkloadProfile:
    data = dict(data)
    data["regions"] = tuple(MemRegion(**r) for r in data["regions"])
    return WorkloadProfile(**data)


# ---------------------------------------------------------------------------
# Simulation points (the campaign service's wire format)
# ---------------------------------------------------------------------------

def point_to_dict(point: SimPoint) -> dict[str, Any]:
    """Wire form of a :class:`SimPoint` — full profile and config, so a
    service submission pins down exactly the run the client meant."""
    return {
        "profile": profile_to_dict(point.profile),
        "scheme": point.scheme,
        "config": config_to_dict(point.config),
        "length": point.length,
        "warmup": point.warmup,
        "seed": point.seed,
        "track_values": point.track_values,
        "capture_persist_log": point.capture_persist_log,
        "core": point.core,
        "label": point.label,
    }


def point_from_dict(data: dict[str, Any]) -> SimPoint:
    return SimPoint(
        profile=profile_from_dict(data["profile"]),
        scheme=data["scheme"],
        config=config_from_dict(data["config"]),
        length=data["length"],
        warmup=data["warmup"],
        seed=data.get("seed", 0),
        track_values=data.get("track_values", False),
        capture_persist_log=data.get("capture_persist_log", False),
        core=data.get("core", "ooo"),
        label=data.get("label", ""),
    )


# ---------------------------------------------------------------------------
# Persist logs
# ---------------------------------------------------------------------------

def persist_op_to_dict(op: PersistOp) -> dict[str, Any]:
    return {
        "line_addr": op.line_addr,
        "created": op.created,
        "durable_at": encode_float(op.durable_at),
        "done_at": encode_float(op.done_at),
        "writes": [[encode_float(t), addr, value]
                   for t, addr, value in op.writes],
    }


def persist_op_from_dict(data: dict[str, Any]) -> PersistOp:
    return PersistOp(
        line_addr=data["line_addr"],
        created=data["created"],
        durable_at=decode_float(data["durable_at"]),
        done_at=decode_float(data["done_at"]),
        writes=[(decode_float(t), addr, value)
                for t, addr, value in data["writes"]],
    )


def persist_log_to_list(log: list[PersistOp]) -> list[dict[str, Any]]:
    return [persist_op_to_dict(op) for op in log]


def persist_log_from_list(data: list[dict[str, Any]]) -> list[PersistOp]:
    return [persist_op_from_dict(op) for op in data]


# ---------------------------------------------------------------------------
# Worker payloads
# ---------------------------------------------------------------------------

def payload_from_run(stats: StatsBase, persist_log: list[PersistOp] | None,
                     wall_clock: float,
                     engine: str = "scalar") -> dict[str, Any]:
    """What a worker returns (and the disk cache stores) for one point.

    The stats travel as a :func:`repro.statsbase.stats_to_dict` tagged
    envelope, so any :class:`~repro.statsbase.StatsBase` kind round-trips
    through workers and the disk cache without this module knowing the
    concrete class. Simulated cycles and retired instructions are also
    lifted to the top level, so cache inventories and the bench harness
    can derive campaign throughput (cycles/s, instrs/s) without decoding
    the full stats envelope.

    ``engine`` records which kernel actually produced the stats
    (``"scalar"`` or ``"batched"`` — a diverged lane that fell back
    reports ``"scalar"``), so engine-drift audits can tell results apart
    after the fact.
    """
    cycles, instructions = sim_volume(stats)
    return {
        "schema": CACHE_SCHEMA_VERSION,
        "engine": engine,
        "stats": stats_to_dict(stats),
        "persist_log": (persist_log_to_list(persist_log)
                        if persist_log is not None else None),
        "wall_clock": wall_clock,
        "cycles": cycles,
        "instructions": instructions,
    }


def stats_from_payload(payload: dict[str, Any]) -> StatsBase:
    """Decode a payload's stats; rejects payloads from other schema
    versions (the cache key already embeds the schema, so this firing
    means a corrupted or hand-fed payload)."""
    schema = payload.get("schema")
    if schema != CACHE_SCHEMA_VERSION:
        raise ValueError(
            f"stale result payload: schema {schema!r}, expected "
            f"{CACHE_SCHEMA_VERSION}")
    return stats_from_dict(payload["stats"])


def persist_log_from_payload(payload: dict[str, Any]) \
        -> list[PersistOp] | None:
    log = payload.get("persist_log")
    return persist_log_from_list(log) if log is not None else None


# ---------------------------------------------------------------------------
# Canonical cache-key material
# ---------------------------------------------------------------------------

# v2: CoreStats grew wb_full_stall_cycles and the write-buffer capacity
# model changed; v1 payloads must not alias the new results.
# v3: payloads carry an explicit "schema" field and the stats moved into
# the tagged StatsBase envelope ({"kind", "data"}); v2 payloads must not
# alias (their "stats" is a bare CoreStats dict).
# v4: payloads lift "cycles" and "instructions" to the top level so
# campaign throughput is derivable from cached results without decoding
# the stats envelope; v3 payloads lack them and must not alias.
# v5: payloads record the producing "engine" (scalar vs batched kernel);
# v4 payloads cannot attribute their results and must not alias — stale
# v4 digests are orphaned (the key material embeds the schema) and
# reported/reclaimed by the cache's inventory/gc.
CACHE_SCHEMA_VERSION = 5


def point_key_material(point: SimPoint, salt: str,
                       engine: str | None = None) -> str:
    """Canonical JSON string hashed into the point's cache key.

    Covers every run parameter (full profile and config, not just names)
    plus a code-version salt, so results from a different simulator version
    never alias.

    ``engine`` is normally None — both kernels are bit-exact, so a point's
    result is engine-neutral and either producer may serve it. An
    engine-drift audit passes the engine it insists on, giving that audit
    a disjoint key space: a scalar-cached result is never served to a
    ``engine="batched"`` audit (and vice versa)."""
    material = {
        "schema": CACHE_SCHEMA_VERSION,
        "salt": salt,
        "kind": "app",
        "profile": profile_to_dict(point.profile),
        "scheme": point.scheme,
        "config": config_to_dict(point.config),
        "length": point.length,
        "warmup": point.warmup,
        "seed": point.seed,
        "track_values": point.track_values,
        "capture_persist_log": point.capture_persist_log,
    }
    # Only non-default cores enter the key material, so every digest
    # minted before the in-order core joined the point schema stays
    # valid — "ooo" points hash exactly as they always did.
    if point.core != "ooo":
        material["core"] = point.core
    if engine is not None:
        material["engine"] = engine
    return json.dumps(material, sort_keys=True, separators=(",", ":"),
                      allow_nan=False)
