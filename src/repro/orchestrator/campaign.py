"""Parallel simulation campaigns over a process pool with an L2 disk cache.

A :class:`Campaign` collects :class:`SimPoint`\\ s, resolves as many as it
can from the content-addressed :class:`ResultCache`, fans the misses out
across a ``ProcessPoolExecutor``, and returns results in submission order
regardless of completion order. Worker failures are retried a bounded
number of times.

Per-point timeouts are real deadlines: at most ``jobs`` points are
outstanding at once, each point's clock starts when it is handed to the
pool (not when the collector gets around to it), and a worker that blows
its deadline is killed and its pool slot reclaimed — one wedged point can
neither inflate later points' budgets nor permanently occupy a worker.

Telemetry (points done, cache hits/misses, retries, worker busy-time) is
kept up to date as points complete and handed to an optional progress
callback after every point.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    BrokenExecutor,
    Future,
    ProcessPoolExecutor,
    wait,
)
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import sanitize_requested
from repro.memory.writebuffer import PersistOp
from repro.pipeline.stats import CoreStats

from repro.orchestrator.cache import ResultCache, point_digest
from repro.orchestrator.execute import (
    run_cohort_payloads,
    run_point_payload,
    worker_init,
)
from repro.orchestrator.points import SimPoint
from repro.orchestrator.serialize import (
    persist_log_from_payload,
    stats_from_payload,
)


@dataclass
class PointResult:
    """Outcome of one campaign point (order matches submission order)."""

    index: int
    point: SimPoint
    stats: CoreStats | None = None
    persist_log: list[PersistOp] | None = None
    cache_hit: bool = False
    # Simulation time spent inside a worker *during this campaign*; a
    # cache hit costs no simulation, so it reports 0.0 here and carries
    # the original run's time in cached_wall_clock instead. Throughput
    # and utilization math must only ever aggregate wall_clock over
    # simulated (non-hit) points.
    wall_clock: float = 0.0
    cached_wall_clock: float = 0.0   # original sim time of a cache hit
    attempts: int = 0                # simulation attempts (0 for cache hits)
    # Which kernel produced the stats ("scalar"/"batched"); cache hits
    # report the original producer, failures None.
    engine: str | None = None
    error: str | None = None
    # Worker accounting the payload carried ({"pid", "imports",
    # "preloaded"}); None for cache hits. Stripped from the payload before
    # caching — pids are not deterministic.
    worker: dict[str, int] | None = None

    @property
    def ok(self) -> bool:
        return self.stats is not None

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable digest of the result (no stats payload)."""
        from repro.statsbase import sim_volume

        cycles, instructions = (sim_volume(self.stats)
                                if self.stats is not None else (0.0, 0))
        return {
            "index": self.index,
            "point": self.point.name,
            "ok": self.ok,
            "cache_hit": self.cache_hit,
            "wall_clock": self.wall_clock,
            "cached_wall_clock": self.cached_wall_clock,
            "attempts": self.attempts,
            "engine": self.engine,
            "error": self.error,
            "cycles": cycles,
            "instructions": instructions,
        }


@dataclass
class CampaignTelemetry:
    """Live campaign accounting, snapshotted to progress callbacks."""

    total: int = 0
    done: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    simulated: int = 0
    failures: int = 0               # points that exhausted their retries
    retries: int = 0                # extra attempts after a failure
    timeouts: int = 0               # attempts that blew their deadline
    engine: str = "scalar"          # resolved engine mode for this run
    cohorts: int = 0                # lockstep cohorts planned (>= 2 lanes)
    batched_points: int = 0         # points whose result ran batched
    # unbatchable_reason -> count: why planned points stayed on the scalar
    # kernel (engine choice, scheme with no batched kernel, cohort of 1,
    # campaign-wide sanitize/trace instrumentation, ...). Only simulated
    # (cache-missed) points are planned, so hits never show up here.
    scalar_reasons: dict[str, int] = field(default_factory=dict)
    jobs: int = 1
    busy_seconds: float = 0.0       # summed worker simulation time
    # pid -> number of `repro` imports that worker performed (via its
    # initializer). A warm pool shows exactly 1 per worker no matter how
    # many points it ran; serial in-process runs record nothing.
    worker_imports: dict[int, int] = field(default_factory=dict)
    started_at: float = field(default_factory=time.perf_counter)

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.started_at

    @property
    def worker_utilization(self) -> float:
        """Fraction of the pool's wall-clock capacity spent simulating."""
        wall = self.elapsed * max(1, self.jobs)
        return self.busy_seconds / wall if wall > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "done": self.done,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated": self.simulated,
            "failures": self.failures,
            "retries": self.retries,
            "timeouts": self.timeouts,
            "engine": self.engine,
            "cohorts": self.cohorts,
            "batched_points": self.batched_points,
            "scalar_reasons": dict(sorted(self.scalar_reasons.items())),
            "jobs": self.jobs,
            "busy_seconds": self.busy_seconds,
            "worker_imports": {str(pid): count for pid, count
                               in sorted(self.worker_imports.items())},
            "elapsed": self.elapsed,
            "worker_utilization": self.worker_utilization,
        }

    def summary_line(self) -> str:
        return (f"{self.done}/{self.total} points, "
                f"L2 {self.cache_hits} hit / {self.cache_misses} miss, "
                f"{self.simulated} simulated "
                f"({self.batched_points} batched in {self.cohorts} "
                f"cohorts), {self.retries} retries, "
                f"{self.failures} failed, "
                f"{self.elapsed:.1f}s elapsed, "
                f"{100.0 * self.worker_utilization:.0f}% "
                f"worker utilization")


ProgressCallback = Callable[[CampaignTelemetry, PointResult], None]


class CampaignError(RuntimeError):
    """A point exhausted its retries and ``fail_fast`` was requested."""


class Campaign:
    """Submit points, then :meth:`run` them with caching and parallelism."""

    def __init__(self, cache: ResultCache | None = None, jobs: int = 1,
                 timeout: float | None = None, retries: int = 1,
                 progress: ProgressCallback | None = None,
                 fail_fast: bool = False,
                 sanitize: bool | None = None,
                 trace_dir: str | None = None,
                 engine: str | None = None) -> None:
        from repro.engine import resolve_engine

        self.cache = cache
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.progress = progress
        self.fail_fast = fail_fast
        # Execution engine (repro.engine contract: None resolves
        # REPRO_ENGINE, default "auto"). Cache misses are planned into
        # lockstep cohorts (repro.engine.plan) and each cohort is one
        # schedulable unit; a failed cohort splits back to scalar
        # singletons. Sanitized/traced campaigns need the scalar kernel's
        # instrumentation hooks, so they never plan cohorts.
        self.engine = resolve_engine(engine)
        # Run every simulated point under the persistency sanitizer
        # (repro.sanitizer); None defers to the REPRO_SANITIZE environment
        # variable. Cached hits are returned as-is — the sanitizer checks
        # execution, not payloads.
        self.sanitize = sanitize_requested() if sanitize is None \
            else sanitize
        # With a trace_dir, every *simulated* point (cache hits have no
        # execution to trace) records cycle-level telemetry and drops a
        # Perfetto-loadable Chrome trace named after the point.
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.points: list[SimPoint] = []
        self.telemetry = CampaignTelemetry(jobs=self.jobs)
        # Structured log (repro.observe.slog) or None; resolved per run()
        # so REPRO_LOG set between runs takes effect.
        self._slog = None

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add(self, point: SimPoint) -> int:
        """Queue a point; returns its (stable) result index."""
        self.points.append(point)
        return len(self.points) - 1

    def add_run(self, profile, scheme: str, **kwargs: Any) -> int:
        """Convenience: build the point via :func:`make_point` and queue
        it."""
        from repro.orchestrator.points import make_point

        return self.add(make_point(profile, scheme, **kwargs))

    def extend(self, points) -> None:
        for point in points:
            self.add(point)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self) -> list[PointResult]:
        """Execute every queued point; results come back in submission
        order with deterministic content (the simulator is seeded)."""
        from repro.observe.slog import log_for_run

        telemetry = self.telemetry = CampaignTelemetry(jobs=self.jobs,
                                                       engine=self.engine)
        telemetry.total = len(self.points)
        self._slog = log_for_run()
        if self._slog is not None:
            self._slog.emit("campaign.start", points=len(self.points),
                            jobs=self.jobs, engine=self.engine,
                            sanitize=self.sanitize,
                            trace_dir=self.trace_dir)
        results: list[PointResult | None] = [None] * len(self.points)

        misses: list[int] = []
        for index, point in enumerate(self.points):
            result = self._try_cache(index, point)
            if result is not None:
                results[index] = result
                self._account(result)
            else:
                misses.append(index)

        if misses:
            jobs = self._plan_jobs(misses)
            # A timeout needs a worker process to kill: in-process serial
            # execution cannot interrupt a wedged simulation, so a
            # jobs=1 campaign with a deadline runs on a 1-worker pool.
            if self.jobs == 1 and self.timeout is None:
                self._run_serial(jobs, results)
            else:
                self._run_pool(misses, jobs, results)
        assert all(r is not None for r in results)
        if self._slog is not None:
            self._slog.emit("campaign.done",
                            **{key: value for key, value
                               in telemetry.to_dict().items()
                               if key != "worker_imports"})
        return results  # type: ignore[return-value]

    # -- batch planning -------------------------------------------------

    def _plan_jobs(self, misses: list[int]) \
            -> list[tuple[tuple[int, ...], bool]]:
        """Partition the missed indices into schedulable jobs: each job is
        ``(point indices, run_batched)`` — a lockstep cohort or a scalar
        singleton. A width-1 cohort (only possible under
        ``engine="batched"``) is demoted to a singleton: per-point
        execution resolves the engine itself (workers inherit it via
        :func:`worker_init`), so the point still runs the batched kernel,
        while keeping the per-point path — with its timeout/retry
        accounting and test seams — the only way single points execute."""
        if self.engine == "scalar" or self.sanitize or \
                self.trace_dir is not None:
            reason = ("engine=scalar" if self.engine == "scalar"
                      else "sanitizer needs scalar instrumentation"
                      if self.sanitize
                      else "tracing needs scalar instrumentation")
            self.telemetry.scalar_reasons[reason] = len(misses)
            return [((index,), False) for index in misses]
        from repro.engine.plan import plan_points

        plan = plan_points([self.points[i] for i in misses], self.engine)
        self.telemetry.scalar_reasons = plan.summary()["scalar_reasons"]
        jobs = [(tuple(misses[i] for i in cohort.indices), True)
                for cohort in plan.cohorts if len(cohort.indices) > 1]
        self.telemetry.cohorts = len(jobs)
        jobs.extend(((misses[cohort.indices[0]],), False)
                    for cohort in plan.cohorts if len(cohort.indices) == 1)
        jobs.extend(((misses[i],), False) for i in plan.scalar_indices)
        return jobs

    # -- cache probe ----------------------------------------------------

    def _try_cache(self, index: int, point: SimPoint) -> PointResult | None:
        if self.cache is None:
            return None
        digest = point_digest(point)
        payload = self.cache.get(digest)
        if payload is None:
            return None
        return PointResult(
            index=index, point=point,
            stats=stats_from_payload(payload),
            persist_log=persist_log_from_payload(payload),
            cache_hit=True,
            cached_wall_clock=payload.get("wall_clock", 0.0),
            engine=payload.get("engine", "scalar"),
        )

    def _store(self, point: SimPoint, payload: dict[str, Any]) -> None:
        if self.cache is not None:
            self.cache.put(point_digest(point), payload,
                           meta={"point": point.name})

    # -- bookkeeping ----------------------------------------------------

    def _account(self, result: PointResult) -> None:
        telemetry = self.telemetry
        telemetry.done += 1
        if result.cache_hit:
            telemetry.cache_hits += 1
        else:
            telemetry.cache_misses += 1
            if result.worker is not None and "pid" in result.worker:
                telemetry.worker_imports[result.worker["pid"]] = \
                    result.worker["imports"]
            if result.ok:
                telemetry.simulated += 1
                telemetry.busy_seconds += result.wall_clock
                if result.engine == "batched":
                    telemetry.batched_points += 1
            else:
                telemetry.failures += 1
        if self._slog is not None:
            self._slog.emit(
                "campaign.point", point=result.point.name,
                index=result.index,
                source=("hit" if result.cache_hit
                        else "sim" if result.ok else "fail"),
                engine=result.engine, wall=result.wall_clock,
                attempts=result.attempts, error=result.error,
                done=telemetry.done, total=telemetry.total)
        if self.progress is not None:
            self.progress(telemetry, result)
        if result.error is not None and self.fail_fast:
            raise CampaignError(
                f"point {result.index} ({result.point.name}) failed after "
                f"{result.attempts} attempts: {result.error}")

    def _result_from_payload(self, index: int, point: SimPoint,
                             payload: dict[str, Any],
                             attempts: int) -> PointResult:
        # Strip worker accounting before the payload reaches the cache:
        # cached payloads must stay deterministic, and a future cache hit
        # ran in no worker at all.
        worker = payload.pop("worker", None)
        result = PointResult(
            index=index, point=point,
            stats=stats_from_payload(payload),
            persist_log=persist_log_from_payload(payload),
            wall_clock=payload.get("wall_clock", 0.0),
            attempts=attempts,
            engine=payload.get("engine", "scalar"),
            worker=worker,
        )
        self._store(point, payload)
        return result

    # -- serial path ----------------------------------------------------

    def _run_serial(self, jobs: list[tuple[tuple[int, ...], bool]],
                    results: list[PointResult | None]) -> None:
        from repro.engine import engine_env

        # Singleton jobs resolve the engine per point (so a width-1
        # "cohort" under engine="batched" still runs the batched kernel);
        # in-process that resolution reads the environment, which this
        # scope pins to the campaign's engine — the serial counterpart of
        # worker_init's pinning in pool workers.
        with engine_env(self.engine):
            self._drain_serial(jobs, results)

    def _drain_serial(self, jobs: list[tuple[tuple[int, ...], bool]],
                      results: list[PointResult | None]) -> None:
        pending = deque(jobs)
        while pending:
            job, batched = pending.popleft()
            if batched:
                try:
                    payloads = run_cohort_payloads(
                        [self.points[i] for i in job], self.sanitize,
                        self.trace_dir)
                except Exception:  # noqa: BLE001 — split and retry scalar
                    # The cohort's failure is not any one point's failure:
                    # re-run each lane as a scalar singleton with its full
                    # attempt budget.
                    pending.extendleft(((i,), False)
                                       for i in reversed(job))
                    continue
                for index, payload in zip(job, payloads):
                    result = self._result_from_payload(
                        index, self.points[index], payload, 1)
                    results[index] = result
                    self._account(result)
                continue
            index = job[0]
            point = self.points[index]
            attempts = 0
            while True:
                attempts += 1
                try:
                    payload = run_point_payload(point, self.sanitize,
                                              self.trace_dir)
                except Exception as exc:  # noqa: BLE001 — retried below
                    if attempts <= self.retries:
                        self.telemetry.retries += 1
                        continue
                    result = PointResult(index=index, point=point,
                                         attempts=attempts, error=repr(exc))
                else:
                    result = self._result_from_payload(
                        index, point, payload, attempts)
                break
            results[index] = result
            self._account(result)

    # -- pool path ------------------------------------------------------

    def _preload_specs(self, misses: list[int]) -> tuple:
        """Trace specs worth interning in every worker up front: the
        ``(profile, length, seed)`` combinations shared by two or more
        submitted points (a sweep varies config/scheme, not the trace)."""
        from collections import Counter

        counts = Counter(
            (self.points[i].profile, self.points[i].length,
             self.points[i].seed) for i in misses)
        return tuple(spec for spec, count in counts.most_common(8)
                     if count >= 2)

    def _make_pool(self, misses: list[int]) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, initializer=worker_init,
            initargs=(self._preload_specs(misses), self.engine))

    def _run_pool(self, misses: list[int],
                  jobs: list[tuple[tuple[int, ...], bool]],
                  results: list[PointResult | None]) -> None:
        """Completion-order collection over a bounded in-flight window.

        At most ``jobs`` schedulable units are outstanding, so a submitted
        unit is (modulo executor hand-off) a *running* unit and its
        deadline can honestly start at submission. A lockstep cohort is
        one unit: its deadline scales with its lane count, and on any
        failure (worker exception, blown deadline, dead pool) it splits
        back into scalar singletons re-queued at the front with the
        cohort attempt refunded — the cohort's failure is not any one
        point's failure. Results land in ``results`` by index, so the
        caller still observes submission order.
        """
        pool = self._make_pool(misses)
        waiting: deque = deque(jobs)             # not yet (re)submitted
        inflight: dict[Future, tuple[tuple[int, ...], bool]] = {}
        deadlines: dict[tuple, float] = {}
        attempts: dict[int, int] = dict.fromkeys(misses, 0)
        try:
            while waiting or inflight:
                while waiting and len(inflight) < self.jobs:
                    job = waiting.popleft()
                    indices, batched = job
                    for index in indices:
                        attempts[index] += 1
                    if batched:
                        future = pool.submit(
                            run_cohort_payloads,
                            [self.points[i] for i in indices],
                            self.sanitize, self.trace_dir)
                    else:
                        future = pool.submit(
                            run_point_payload, self.points[indices[0]],
                            self.sanitize, self.trace_dir)
                    inflight[future] = job
                    if self.timeout is not None:
                        deadlines[job] = (time.monotonic()
                                          + self.timeout * len(indices))
                budget = None
                if deadlines:
                    budget = max(0.0, min(deadlines[j] for j in
                                          inflight.values())
                                 - time.monotonic())
                done, _ = wait(set(inflight), timeout=budget,
                               return_when=FIRST_COMPLETED)
                for future in done:
                    job = inflight.pop(future, None)
                    if job is None:
                        # A sibling's BrokenExecutor already recycled this
                        # job onto the fresh pool.
                        continue
                    deadlines.pop(job, None)
                    indices, batched = job
                    try:
                        payload = future.result()
                    except BrokenExecutor as exc:
                        # The pool is dead (worker OOM/segfault): every
                        # sibling future broke with it, so recycle them
                        # all onto a fresh pool; only this job is
                        # charged.
                        pool = self._recycle_pool(
                            pool, inflight, deadlines, waiting, attempts,
                            kill=False)
                        self._fail_job(waiting, attempts, results, job,
                                       repr(exc))
                    except Exception as exc:  # noqa: BLE001 — worker raised
                        self._fail_job(waiting, attempts, results, job,
                                       repr(exc))
                    else:
                        payloads = payload if batched else [payload]
                        for index, lane_payload in zip(indices, payloads):
                            result = self._result_from_payload(
                                index, self.points[index], lane_payload,
                                attempts[index])
                            results[index] = result
                            self._account(result)
                if self.timeout is not None:
                    pool = self._expire_deadlines(
                        pool, inflight, deadlines, waiting, attempts,
                        results)
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _expire_deadlines(self, pool: ProcessPoolExecutor,
                          inflight: dict[Future, tuple],
                          deadlines: dict[tuple, float],
                          waiting: deque,
                          attempts: dict[int, int],
                          results: list[PointResult | None]) \
            -> ProcessPoolExecutor:
        """Fail/retry every in-flight job past its deadline and reclaim
        the pool slots their workers occupy."""
        now = time.monotonic()
        expired = [(future, job) for future, job in inflight.items()
                   if deadlines.get(job, now + 1.0) <= now]
        if not expired:
            return pool
        must_kill = False
        for future, job in expired:
            del inflight[future]
            del deadlines[job]
            self.telemetry.timeouts += 1
            # A future the executor has not started yet cancels cleanly;
            # a running worker must be killed or it keeps the slot.
            if not future.cancel():
                must_kill = True
            self._fail_job(
                waiting, attempts, results, job,
                f"deadline exceeded ({self.timeout}s)")
        if must_kill:
            pool = self._recycle_pool(pool, inflight, deadlines, waiting,
                                      attempts, kill=True)
        return pool

    def _fail_job(self, waiting: deque, attempts: dict[int, int],
                  results: list[PointResult | None],
                  job: tuple[tuple[int, ...], bool], error: str) -> None:
        """Handle one failed schedulable unit: a cohort splits back into
        scalar singletons (front of the line, cohort attempt refunded); a
        singleton retries or records its failure."""
        indices, batched = job
        if batched:
            for index in indices:
                attempts[index] -= 1
            waiting.extendleft(((index,), False)
                               for index in reversed(indices))
            return
        self._finish_failure(waiting, attempts, results, indices[0], error)

    def _finish_failure(self, waiting: deque,
                        attempts: dict[int, int],
                        results: list[PointResult | None], index: int,
                        error: str) -> None:
        """Requeue ``index`` (front of the line) if retry budget remains,
        else record its failed :class:`PointResult`."""
        if attempts[index] <= self.retries:
            self.telemetry.retries += 1
            waiting.appendleft(((index,), False))
            return
        result = PointResult(index=index, point=self.points[index],
                             attempts=attempts[index], error=error)
        results[index] = result
        self._account(result)

    def _recycle_pool(self, pool: ProcessPoolExecutor,
                      inflight: dict[Future, tuple],
                      deadlines: dict[tuple, float], waiting: deque,
                      attempts: dict[int, int],
                      kill: bool) -> ProcessPoolExecutor:
        """Replace a dead (or deliberately killed) pool.

        Surviving in-flight jobs go back to the front of the waiting
        queue with their submission-time attempts refunded — the pool's
        death was not their failure, and resubmission charges them again.
        With ``kill``, worker processes are terminated first so a wedged
        simulation actually releases its slot."""
        if kill:
            for process in getattr(pool, "_processes", {}).values():
                try:
                    process.terminate()
                except OSError:  # pragma: no cover — already reaped
                    pass
        pool.shutdown(wait=False, cancel_futures=True)
        for job in sorted(inflight.values(), reverse=True):
            for index in job[0]:
                attempts[index] -= 1
            waiting.appendleft(job)
        inflight.clear()
        deadlines.clear()
        return self._make_pool([i for job in waiting for i in job[0]])
