"""Parallel simulation campaigns over a process pool with an L2 disk cache.

A :class:`Campaign` collects :class:`SimPoint`\\ s, resolves as many as it
can from the content-addressed :class:`ResultCache`, fans the misses out
across a ``ProcessPoolExecutor``, and returns results in submission order
regardless of completion order. Worker failures are retried a bounded
number of times; per-point timeouts bound how long the collector waits on
any single point.

Telemetry (points done, cache hits/misses, retries, worker busy-time) is
kept up to date as points complete and handed to an optional progress
callback after every point.
"""

from __future__ import annotations

import time
from concurrent.futures import BrokenExecutor, Future, ProcessPoolExecutor
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.config import sanitize_requested
from repro.memory.writebuffer import PersistOp
from repro.pipeline.stats import CoreStats

from repro.orchestrator.cache import ResultCache, point_digest
from repro.orchestrator.execute import run_point_payload, worker_init
from repro.orchestrator.points import SimPoint
from repro.orchestrator.serialize import (
    persist_log_from_payload,
    stats_from_payload,
)


@dataclass
class PointResult:
    """Outcome of one campaign point (order matches submission order)."""

    index: int
    point: SimPoint
    stats: CoreStats | None = None
    persist_log: list[PersistOp] | None = None
    cache_hit: bool = False
    # Simulation time spent inside a worker *during this campaign*; a
    # cache hit costs no simulation, so it reports 0.0 here and carries
    # the original run's time in cached_wall_clock instead. Throughput
    # and utilization math must only ever aggregate wall_clock over
    # simulated (non-hit) points.
    wall_clock: float = 0.0
    cached_wall_clock: float = 0.0   # original sim time of a cache hit
    attempts: int = 0                # simulation attempts (0 for cache hits)
    error: str | None = None
    # Worker accounting the payload carried ({"pid", "imports",
    # "preloaded"}); None for cache hits. Stripped from the payload before
    # caching — pids are not deterministic.
    worker: dict[str, int] | None = None

    @property
    def ok(self) -> bool:
        return self.stats is not None

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable digest of the result (no stats payload)."""
        from repro.statsbase import sim_volume

        cycles, instructions = (sim_volume(self.stats)
                                if self.stats is not None else (0.0, 0))
        return {
            "index": self.index,
            "point": self.point.name,
            "ok": self.ok,
            "cache_hit": self.cache_hit,
            "wall_clock": self.wall_clock,
            "cached_wall_clock": self.cached_wall_clock,
            "attempts": self.attempts,
            "error": self.error,
            "cycles": cycles,
            "instructions": instructions,
        }


@dataclass
class CampaignTelemetry:
    """Live campaign accounting, snapshotted to progress callbacks."""

    total: int = 0
    done: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    simulated: int = 0
    failures: int = 0               # points that exhausted their retries
    retries: int = 0                # extra attempts after a failure
    jobs: int = 1
    busy_seconds: float = 0.0       # summed worker simulation time
    # pid -> number of `repro` imports that worker performed (via its
    # initializer). A warm pool shows exactly 1 per worker no matter how
    # many points it ran; serial in-process runs record nothing.
    worker_imports: dict[int, int] = field(default_factory=dict)
    started_at: float = field(default_factory=time.perf_counter)

    @property
    def elapsed(self) -> float:
        return time.perf_counter() - self.started_at

    @property
    def worker_utilization(self) -> float:
        """Fraction of the pool's wall-clock capacity spent simulating."""
        wall = self.elapsed * max(1, self.jobs)
        return self.busy_seconds / wall if wall > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "total": self.total,
            "done": self.done,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "simulated": self.simulated,
            "failures": self.failures,
            "retries": self.retries,
            "jobs": self.jobs,
            "busy_seconds": self.busy_seconds,
            "worker_imports": {str(pid): count for pid, count
                               in sorted(self.worker_imports.items())},
            "elapsed": self.elapsed,
            "worker_utilization": self.worker_utilization,
        }

    def summary_line(self) -> str:
        return (f"{self.done}/{self.total} points, "
                f"L2 {self.cache_hits} hit / {self.cache_misses} miss, "
                f"{self.simulated} simulated, {self.retries} retries, "
                f"{self.failures} failed, "
                f"{self.elapsed:.1f}s elapsed, "
                f"{100.0 * self.worker_utilization:.0f}% "
                f"worker utilization")


ProgressCallback = Callable[[CampaignTelemetry, PointResult], None]


class CampaignError(RuntimeError):
    """A point exhausted its retries and ``fail_fast`` was requested."""


class Campaign:
    """Submit points, then :meth:`run` them with caching and parallelism."""

    def __init__(self, cache: ResultCache | None = None, jobs: int = 1,
                 timeout: float | None = None, retries: int = 1,
                 progress: ProgressCallback | None = None,
                 fail_fast: bool = False,
                 sanitize: bool | None = None,
                 trace_dir: str | None = None) -> None:
        self.cache = cache
        self.jobs = max(1, jobs)
        self.timeout = timeout
        self.retries = max(0, retries)
        self.progress = progress
        self.fail_fast = fail_fast
        # Run every simulated point under the persistency sanitizer
        # (repro.sanitizer); None defers to the REPRO_SANITIZE environment
        # variable. Cached hits are returned as-is — the sanitizer checks
        # execution, not payloads.
        self.sanitize = sanitize_requested() if sanitize is None \
            else sanitize
        # With a trace_dir, every *simulated* point (cache hits have no
        # execution to trace) records cycle-level telemetry and drops a
        # Perfetto-loadable Chrome trace named after the point.
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.points: list[SimPoint] = []
        self.telemetry = CampaignTelemetry(jobs=self.jobs)

    # ------------------------------------------------------------------
    # Building
    # ------------------------------------------------------------------

    def add(self, point: SimPoint) -> int:
        """Queue a point; returns its (stable) result index."""
        self.points.append(point)
        return len(self.points) - 1

    def add_run(self, profile, scheme: str, **kwargs: Any) -> int:
        """Convenience: build the point via :func:`make_point` and queue
        it."""
        from repro.orchestrator.points import make_point

        return self.add(make_point(profile, scheme, **kwargs))

    def extend(self, points) -> None:
        for point in points:
            self.add(point)

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------

    def run(self) -> list[PointResult]:
        """Execute every queued point; results come back in submission
        order with deterministic content (the simulator is seeded)."""
        telemetry = self.telemetry = CampaignTelemetry(jobs=self.jobs)
        telemetry.total = len(self.points)
        results: list[PointResult | None] = [None] * len(self.points)

        misses: list[int] = []
        for index, point in enumerate(self.points):
            result = self._try_cache(index, point)
            if result is not None:
                results[index] = result
                self._account(result)
            else:
                misses.append(index)

        if misses:
            if self.jobs == 1:
                self._run_serial(misses, results)
            else:
                self._run_pool(misses, results)
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]

    # -- cache probe ----------------------------------------------------

    def _try_cache(self, index: int, point: SimPoint) -> PointResult | None:
        if self.cache is None:
            return None
        digest = point_digest(point)
        payload = self.cache.get(digest)
        if payload is None:
            return None
        return PointResult(
            index=index, point=point,
            stats=stats_from_payload(payload),
            persist_log=persist_log_from_payload(payload),
            cache_hit=True,
            cached_wall_clock=payload.get("wall_clock", 0.0),
        )

    def _store(self, point: SimPoint, payload: dict[str, Any]) -> None:
        if self.cache is not None:
            self.cache.put(point_digest(point), payload,
                           meta={"point": point.name})

    # -- bookkeeping ----------------------------------------------------

    def _account(self, result: PointResult) -> None:
        telemetry = self.telemetry
        telemetry.done += 1
        if result.cache_hit:
            telemetry.cache_hits += 1
        else:
            telemetry.cache_misses += 1
            if result.worker is not None and "pid" in result.worker:
                telemetry.worker_imports[result.worker["pid"]] = \
                    result.worker["imports"]
            if result.ok:
                telemetry.simulated += 1
                telemetry.busy_seconds += result.wall_clock
            else:
                telemetry.failures += 1
        if self.progress is not None:
            self.progress(telemetry, result)
        if result.error is not None and self.fail_fast:
            raise CampaignError(
                f"point {result.index} ({result.point.name}) failed after "
                f"{result.attempts} attempts: {result.error}")

    def _result_from_payload(self, index: int, point: SimPoint,
                             payload: dict[str, Any],
                             attempts: int) -> PointResult:
        # Strip worker accounting before the payload reaches the cache:
        # cached payloads must stay deterministic, and a future cache hit
        # ran in no worker at all.
        worker = payload.pop("worker", None)
        result = PointResult(
            index=index, point=point,
            stats=stats_from_payload(payload),
            persist_log=persist_log_from_payload(payload),
            wall_clock=payload.get("wall_clock", 0.0),
            attempts=attempts,
            worker=worker,
        )
        self._store(point, payload)
        return result

    # -- serial path ----------------------------------------------------

    def _run_serial(self, misses: list[int],
                    results: list[PointResult | None]) -> None:
        for index in misses:
            point = self.points[index]
            attempts = 0
            while True:
                attempts += 1
                try:
                    payload = run_point_payload(point, self.sanitize,
                                              self.trace_dir)
                except Exception as exc:  # noqa: BLE001 — retried below
                    if attempts <= self.retries:
                        self.telemetry.retries += 1
                        continue
                    result = PointResult(index=index, point=point,
                                         attempts=attempts, error=repr(exc))
                else:
                    result = self._result_from_payload(
                        index, point, payload, attempts)
                break
            results[index] = result
            self._account(result)

    # -- pool path ------------------------------------------------------

    def _preload_specs(self, misses: list[int]) -> tuple:
        """Trace specs worth interning in every worker up front: the
        ``(profile, length, seed)`` combinations shared by two or more
        submitted points (a sweep varies config/scheme, not the trace)."""
        from collections import Counter

        counts = Counter(
            (self.points[i].profile, self.points[i].length,
             self.points[i].seed) for i in misses)
        return tuple(spec for spec, count in counts.most_common(8)
                     if count >= 2)

    def _make_pool(self, misses: list[int]) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.jobs, initializer=worker_init,
            initargs=(self._preload_specs(misses),))

    def _run_pool(self, misses: list[int],
                  results: list[PointResult | None]) -> None:
        pool = self._make_pool(misses)
        futures: dict[int, Future] = {}
        attempts: dict[int, int] = {}
        try:
            for index in misses:
                futures[index] = pool.submit(
                    run_point_payload, self.points[index], self.sanitize,
                    self.trace_dir)
                attempts[index] = 1

            # Collect in submission order so retries keep deterministic
            # result ordering; out-of-order completions simply wait ready.
            queue = list(misses)
            position = 0
            while position < len(queue):
                index = queue[position]
                point = self.points[index]
                future = futures[index]
                try:
                    payload = future.result(timeout=self.timeout)
                except FutureTimeoutError:
                    future.cancel()
                    result, pool = self._handle_failure(
                        pool, futures, attempts, index,
                        f"timeout after {self.timeout}s")
                except BrokenExecutor as exc:
                    # The pool is dead (worker OOM/segfault): rebuild it and
                    # resubmit every unfinished point before retrying.
                    pool = self._rebuild_pool(pool, futures, queue, position)
                    result, pool = self._handle_failure(
                        pool, futures, attempts, index, repr(exc))
                except Exception as exc:  # noqa: BLE001 — worker raised
                    result, pool = self._handle_failure(
                        pool, futures, attempts, index, repr(exc))
                else:
                    result = self._result_from_payload(
                        index, point, payload, attempts[index])
                if result is None:
                    continue      # retrying this index; don't advance
                results[index] = result
                self._account(result)
                position += 1
        finally:
            pool.shutdown(wait=False, cancel_futures=True)

    def _handle_failure(self, pool: ProcessPoolExecutor,
                        futures: dict[int, Future],
                        attempts: dict[int, int], index: int,
                        error: str):
        """Retry ``index`` if budget remains (returns ``(None, pool)``), or
        produce its failed :class:`PointResult`."""
        if attempts[index] <= self.retries:
            attempts[index] += 1
            self.telemetry.retries += 1
            futures[index] = pool.submit(
                run_point_payload, self.points[index], self.sanitize,
                    self.trace_dir)
            return None, pool
        return PointResult(index=index, point=self.points[index],
                           attempts=attempts[index], error=error), pool

    def _rebuild_pool(self, pool: ProcessPoolExecutor,
                      futures: dict[int, Future], queue: list[int],
                      position: int) -> ProcessPoolExecutor:
        pool.shutdown(wait=False, cancel_futures=True)
        pool = self._make_pool(queue[position:])
        for pending in queue[position + 1:]:
            if not futures[pending].done() or \
                    futures[pending].exception() is not None:
                futures[pending] = pool.submit(
                    run_point_payload, self.points[pending], self.sanitize,
                    self.trace_dir)
        return pool
