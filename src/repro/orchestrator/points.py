"""Simulation points: the unit of work a campaign schedules.

A :class:`SimPoint` pins down everything that determines a run's outcome —
workload profile, scheme, resolved configuration, trace length/warmup,
seed, and whether values are tracked — so the same point always hashes to
the same cache key, in any process.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.config import SystemConfig, skylake_default
from repro.persistence.catalog import scheme_backend
from repro.workloads.profiles import WorkloadProfile, profile_by_name

DEFAULT_LENGTH = 20_000
DEFAULT_WARMUP = 40_000


def config_for(scheme: str, config: SystemConfig | None) -> SystemConfig:
    """Resolve the effective configuration for a scheme: default if absent,
    with the memory backend forced to the scheme's requirement."""
    base = config if config is not None else skylake_default()
    backend = scheme_backend(scheme)
    if base.memory.backend != backend:
        base = replace(base, memory=replace(base.memory, backend=backend))
    return base


@dataclass(frozen=True)
class SimPoint:
    """One (application x scheme x configuration) simulation."""

    profile: WorkloadProfile
    scheme: str
    config: SystemConfig
    length: int = DEFAULT_LENGTH
    warmup: int = DEFAULT_WARMUP
    seed: int = 0
    track_values: bool = False
    # Also return the write buffer's persist-op log (needed to drive the
    # failure injector against a cached run).
    capture_persist_log: bool = False
    # Core model: "ooo" (the paper's default) or "inorder" (the value-CSQ
    # in-order core of §7.1).
    core: str = "ooo"
    label: str = ""

    @property
    def name(self) -> str:
        if self.label:
            return self.label
        if self.core != "ooo":
            return f"{self.profile.name}:{self.scheme}:{self.core}"
        return f"{self.profile.name}:{self.scheme}"


def make_point(profile: WorkloadProfile | str, scheme: str,
               config: SystemConfig | None = None,
               length: int = DEFAULT_LENGTH, warmup: int = DEFAULT_WARMUP,
               seed: int = 0, track_values: bool = False,
               capture_persist_log: bool = False, core: str = "ooo",
               label: str = "") -> SimPoint:
    """Build a :class:`SimPoint` with the configuration resolved."""
    if isinstance(profile, str):
        profile = profile_by_name(profile)
    if core not in ("ooo", "inorder"):
        raise ValueError(f"unknown core model {core!r} "
                         "(options: ooo, inorder)")
    return SimPoint(profile=profile, scheme=scheme,
                    config=config_for(scheme, config), length=length,
                    warmup=warmup, seed=seed, track_values=track_values,
                    capture_persist_log=capture_persist_log, core=core,
                    label=label)


def memo_key(point: SimPoint) -> tuple:
    """In-process memo key covering *every* run parameter.

    Keyed on the profile object itself (not only its name), so a modified
    profile that reuses a stock name cannot collide with the stock run;
    the leading tag namespaces single-core keys away from multicore ones.
    """
    return ("app", point.profile, point.scheme, point.config, point.length,
            point.warmup, point.seed, point.track_values, point.core)


def multicore_memo_key(profile: WorkloadProfile, scheme: str,
                       config: SystemConfig, threads: int, length: int,
                       warmup: int, seed: int) -> tuple:
    """Memo key for a multicore run; same collision guarantees."""
    return ("mt", profile, scheme, config, threads, length, warmup, seed)
