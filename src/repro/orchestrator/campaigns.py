"""Named campaign builders for the paper's sensitivity sweeps.

Each sweep (Figures 15-18) is the same shape: a list of configurations, a
set of applications, and a ``ppa``-over-``baseline`` slowdown per cell.
``build_sweep`` expands that into the flat point list a :class:`Campaign`
schedules, and ``summarize_sweep`` folds the results back into the
figure's (config -> gmean slowdown) table.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from repro.analysis.stats import gmean
from repro.config import SystemConfig, skylake_default

from repro.orchestrator.points import (
    DEFAULT_WARMUP,
    SimPoint,
    make_point,
)

SWEEP_LENGTH = 12_000

# Mirrors repro.experiments.figures.SWEEP_APPS (kept literal here so the
# orchestrator has no import edge into the experiments layer).
SWEEP_APPS = ("mcf", "lbm", "libquantum", "rb", "pc", "water-ns",
              "lulesh", "xsbench")


@dataclass(frozen=True)
class SweepSpec:
    """One figure-style sweep: labeled configs x apps x (ppa, baseline)."""

    name: str
    title: str
    configs: tuple[tuple[str, SystemConfig], ...]
    apps: tuple[str, ...] = SWEEP_APPS
    schemes: tuple[str, ...] = ("ppa", "baseline")
    length: int = SWEEP_LENGTH
    # Core model every point runs on ("ooo" or "inorder"). The in-order
    # model always runs cold, so in-order sweeps are built with warmup=0
    # — that keeps their cohort keys (and cache digests) canonical.
    core: str = "ooo"


def _prf_spec() -> SweepSpec:
    base = skylake_default()
    sizes = ((80, 80), (100, 100), (120, 120), (140, 140), (180, 168),
             (280, 224))
    return SweepSpec(
        name="fig16", title="PPA slowdown vs PRF size",
        configs=tuple((f"{i}/{f}", base.with_prf(i, f)) for i, f in sizes))


def _wpq_spec() -> SweepSpec:
    base = skylake_default()
    return SweepSpec(
        name="fig15", title="PPA slowdown vs WPQ size",
        configs=tuple((f"wpq={n}", base.with_wpq(n))
                      for n in (8, 16, 24)))


def _csq_spec() -> SweepSpec:
    base = skylake_default()
    return SweepSpec(
        name="fig17", title="PPA slowdown vs CSQ size",
        configs=tuple((f"csq={n}", base.with_csq(n))
                      for n in (10, 20, 30, 40, 50)))


def _bandwidth_spec() -> SweepSpec:
    base = skylake_default()
    return SweepSpec(
        name="fig18", title="PPA slowdown vs NVM write bandwidth",
        configs=tuple((f"gbs={g}", base.with_write_bandwidth(g))
                      for g in (1.0, 2.3, 4.0, 6.0)))


def _capri_spec() -> SweepSpec:
    # Fig8-shaped comparator sweep widened over the fig16 PRF grid so
    # every (app, scheme) column forms a lockstep cohort. With capri in
    # KERNEL_SCHEMES all three scheme columns batch.
    base = skylake_default()
    sizes = ((80, 80), (100, 100), (120, 120), (140, 140), (180, 168),
             (280, 224))
    return SweepSpec(
        name="capri", title="PPA and Capri slowdown vs PRF size",
        configs=tuple((f"{i}/{f}", base.with_prf(i, f)) for i, f in sizes),
        schemes=("ppa", "capri", "baseline"))


def _inorder_spec() -> SweepSpec:
    # §7.1's value-CSQ in-order core over the fig16 PRF grid. Both
    # scheme columns run through the batched in-order lane kernel (the
    # facade's crash-API constraint does not apply to stats-only points).
    base = skylake_default()
    sizes = ((80, 80), (120, 120), (180, 168), (280, 224))
    return SweepSpec(
        name="inorder", title="In-order PPA slowdown vs PRF size",
        configs=tuple((f"{i}/{f}", base.with_prf(i, f)) for i, f in sizes),
        core="inorder")


SWEEPS: dict[str, Callable[[], SweepSpec]] = {
    "capri": _capri_spec,
    "fig15": _wpq_spec,
    "fig16": _prf_spec,
    "fig17": _csq_spec,
    "fig18": _bandwidth_spec,
    "inorder": _inorder_spec,
}


def sweep_spec(name: str, apps: Sequence[str] | None = None,
               length: int | None = None) -> SweepSpec:
    """The named sweep, optionally narrowed to a subset of apps or a
    different trace length."""
    try:
        spec = SWEEPS[name]()
    except KeyError:
        known = ", ".join(sorted(SWEEPS))
        raise ValueError(f"unknown sweep {name!r} (known: {known})") \
            from None
    updates: dict = {}
    if apps is not None:
        updates["apps"] = tuple(apps)
    if length is not None:
        updates["length"] = length
    if updates:
        from dataclasses import replace

        spec = replace(spec, **updates)
    return spec


def build_sweep(spec: SweepSpec) -> list[SimPoint]:
    """Expand a sweep into the flat, deterministic point list."""
    points = []
    # The in-order model always runs cold; warmup=0 keeps the points'
    # cohort keys and cache digests canonical for that core.
    warmup = 0 if spec.core == "inorder" else DEFAULT_WARMUP
    for label, config in spec.configs:
        for app in spec.apps:
            for scheme in spec.schemes:
                points.append(make_point(
                    app, scheme, config=config, length=spec.length,
                    warmup=warmup, core=spec.core,
                    label=f"{spec.name}:{label}:{app}:{scheme}"))
    return points


def summarize_sweep(spec: SweepSpec, results) -> list[tuple[str, float]]:
    """(config label, gmean slowdown) rows from a finished campaign.

    ``results`` must come from the point list ``build_sweep`` produced;
    ordering is positional, which :meth:`Campaign.run` guarantees."""
    rows = []
    cursor = iter(results)
    for label, _config in spec.configs:
        ratios = []
        for _app in spec.apps:
            per_scheme = {}
            for scheme in spec.schemes:
                result = next(cursor)
                if result.stats is None:
                    raise RuntimeError(
                        f"point {result.point.name} failed: {result.error}")
                per_scheme[scheme] = result.stats.cycles
            ratios.append(per_scheme["ppa"] / per_scheme["baseline"])
        rows.append((label, gmean(ratios)))
    return rows


def build_matrix(apps: Sequence[str], schemes: Sequence[str],
                 length: int = SWEEP_LENGTH,
                 config: SystemConfig | None = None) -> list[SimPoint]:
    """A plain apps x schemes campaign on one configuration."""
    return [
        make_point(app, scheme, config=config, length=length,
                   label=f"{app}:{scheme}")
        for app in apps
        for scheme in schemes
    ]
