"""Parallel simulation-campaign orchestrator with a persistent result cache.

The layer between the simulator and everything that consumes it:

* :class:`SimPoint` / :func:`make_point` — one (app x scheme x config)
  simulation, fully pinned down (``repro.orchestrator.points``);
* :class:`Campaign` — fan points out over a process pool with bounded
  retries, per-point timeouts, deterministic result ordering, and progress
  telemetry (``repro.orchestrator.campaign``);
* :class:`ResultCache` — content-addressed on-disk L2 keyed by a stable
  hash of the full run parameters plus a code-version salt
  (``repro.orchestrator.cache``);
* serialization for ``CoreStats``/persist logs/configs/profiles
  (``repro.orchestrator.serialize``);
* named sweep campaigns for the paper's sensitivity figures
  (``repro.orchestrator.campaigns``) and a CLI
  (``python -m repro.orchestrator``).
"""

from repro.orchestrator.cache import (
    CacheCounters,
    ResultCache,
    code_salt,
    default_cache_dir,
    point_digest,
)
from repro.orchestrator.campaign import (
    Campaign,
    CampaignError,
    CampaignTelemetry,
    PointResult,
)
from repro.orchestrator.execute import simulate_point
from repro.orchestrator.points import SimPoint, config_for, make_point, memo_key

__all__ = [
    "CacheCounters",
    "Campaign",
    "CampaignError",
    "CampaignTelemetry",
    "PointResult",
    "ResultCache",
    "SimPoint",
    "code_salt",
    "config_for",
    "default_cache_dir",
    "make_point",
    "memo_key",
    "point_digest",
    "simulate_point",
]
