"""repro — a reproduction of *Persistent Processor Architecture* (MICRO'23).

PPA provides whole-system persistence by enforcing *store integrity* in the
out-of-order core: committed stores' physical registers are preserved until
their region's writes are durable, a tiny capacitor JIT-checkpoints the CSQ/
CRT/MaskReg/LCPC and the marked registers on power failure, and recovery
replays the committed stores and resumes after the last committed
instruction.

Quickstart::

    import repro

    result = repro.simulate("gcc", scheme="ppa", engine="auto")
    crash = result.crash_api.crash_at(result.stats.cycles / 2)
    recovered = result.crash_api.recover(crash)
"""

from repro.config import (
    CacheConfig,
    CoreConfig,
    DramCacheConfig,
    MemoryConfig,
    NvmConfig,
    PpaConfig,
    SystemConfig,
    skylake_default,
)
from repro.core import (
    CheckpointPlan,
    CrashState,
    JitCheckpointController,
    PersistentProcessor,
    recover,
)
from repro.facade import SimResult, simulate
from repro.isa import Instruction, Opcode, RegClass, Register, Trace
from repro.persistence import make_policy, scheme_backend, scheme_names
from repro.pipeline import CoreStats, OoOCore
from repro.statsbase import StatsBase, stats_from_dict, stats_to_dict
from repro.workloads import (
    ALL_PROFILES,
    WorkloadProfile,
    generate_trace,
    profile_by_name,
    profiles_in_suite,
)

__version__ = "1.0.0"

__all__ = [
    "ALL_PROFILES",
    "CacheConfig",
    "CheckpointPlan",
    "CoreConfig",
    "CoreStats",
    "CrashState",
    "DramCacheConfig",
    "Instruction",
    "JitCheckpointController",
    "MemoryConfig",
    "NvmConfig",
    "OoOCore",
    "Opcode",
    "PersistentProcessor",
    "PpaConfig",
    "RegClass",
    "Register",
    "SimResult",
    "StatsBase",
    "SystemConfig",
    "Trace",
    "WorkloadProfile",
    "generate_trace",
    "make_policy",
    "profile_by_name",
    "profiles_in_suite",
    "recover",
    "scheme_backend",
    "scheme_names",
    "simulate",
    "skylake_default",
    "stats_from_dict",
    "stats_to_dict",
    "__version__",
]

# Opt-in persistency sanitizer: REPRO_SANITIZE=1 installs runtime invariant
# probes on the persist-path structures (see repro.sanitizer). Checked at
# import so subprocesses — orchestrator pool workers included — inherit it.
from repro.config import sanitize_requested as _sanitize_requested  # noqa: E402

if _sanitize_requested():
    from repro.sanitizer import install as _sanitizer_install

    _sanitizer_install()
