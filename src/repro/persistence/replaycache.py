"""ReplayCache as a WSP comparator (Figure 1, Section 2.4).

ReplayCache enforces store integrity with a *compiler*: a special register
allocator forms short regions (≈12 instructions on average, limited by the
16 architectural x86 registers), inserts a clwb after every store, and
places a persist barrier at each region end. Ported to a server-class core
over a deep cache hierarchy, that design pays twice:

* the clwb doubles store-queue pressure (each flush occupies an SQ entry
  until the line is on its way to NVM) and issues one un-coalesced NVM
  line write per store (write amplification), and
* the barrier stalls the pipeline at every ~12-instruction boundary until
  all of the region's flushes reach the persistence domain.

The region length is drawn per-region from a geometric-like distribution
around ``mean_region_length`` with a deterministic seed, standing in for
the compiler's placement which varies with program shape.
"""

from __future__ import annotations

import random

from repro.core.region import RegionTracker
from repro.isa.instructions import Instruction
from repro.persistence.base import PersistencePolicy
from repro.pipeline.stats import StoreRecord

DEFAULT_MEAN_REGION = 12
# A clwb cannot use PPA's posted writeback path: the flush traverses the
# coherent hierarchy (snooping, then L2 and the memory controller) before
# the trailing sfence can retire (Table 1 — clwb cannot even reach NVM
# through a DRAM cache without help).
FLUSH_LATENCY_CYCLES = 45


class ReplayCachePolicy(PersistencePolicy):
    """Compiler-formed store-integrity regions with per-store clwb."""

    name = "replaycache"

    def __init__(self, mean_region_length: int = DEFAULT_MEAN_REGION,
                 seed: int = 0xCAC4E) -> None:
        super().__init__()
        if mean_region_length < 2:
            raise ValueError("regions need at least two instructions")
        self.mean_region_length = mean_region_length
        self._rng = random.Random(seed)
        self._next_boundary = 0
        self._region_durable = 0.0       # latest durability of region clwbs
        self.regions: RegionTracker | None = None

    def attach(self, core) -> None:
        super().attach(core)
        self.regions = RegionTracker(core.stats.regions,
                                     tracer=core.tracer)
        self._next_boundary = self._draw_region_length()
        self._region_durable = 0.0

    def _draw_region_length(self) -> int:
        # Geometric with the configured mean, floored at 2 so a region can
        # hold at least a store and its barrier.
        p = 1.0 / self.mean_region_length
        length = 1
        while self._rng.random() > p:
            length += 1
        return max(2, length)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def pre_rename(self, seq: int, instr: Instruction, t: float) -> float:
        if seq < self._next_boundary:
            return t
        assert self.core is not None and self.regions is not None
        # The barrier (sfence) retires only after every older instruction
        # has retired and every clwb of the region has reached the
        # persistence domain.
        boundary = max(t, self.core.last_commit_time)
        drain = max(boundary, self._region_durable)
        self.regions.close(seq, boundary, drain, "compiler")
        self._region_durable = 0.0
        self._next_boundary = seq + self._draw_region_length()
        return drain

    def store_committed(self, record: StoreRecord,
                        merge_time: float) -> None:
        assert self.core is not None and self.regions is not None
        record.region_id = self.regions.region_id
        self.regions.note_store()
        core = self.core
        # The clwb trails the store: it consumes a commit slot and holds an
        # SQ entry until the flush has been pushed toward NVM.
        core.commit_bw.take(record.commit_time)
        flush_start = core.sq.earliest_allocate(merge_time)
        ticket = core.nvm.write_line(flush_start + FLUSH_LATENCY_CYCLES,
                                     record.line_addr)
        record.durable_at = ticket.accepted_at
        core.sq.allocate(record.durable_at)
        self._region_durable = max(self._region_durable, record.durable_at)
        self._trace_store(record)

    def finish(self, end_time: float) -> None:
        assert self.core is not None and self.regions is not None
        drain = max(end_time, self._region_durable)
        self.regions.close(self.core.stats.instructions, end_time,
                           drain, "end")
