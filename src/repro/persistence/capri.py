"""Capri as the state-of-the-art WSP comparator (Sections 7.1, 8).

Capri is a compiler/architecture codesign: the compiler partitions the
program into recoverable regions (≈29 instructions on average — 11× shorter
than PPA's dynamic regions) whose stores are captured in a per-core
battery-backed 54 KB redo buffer and streamed to NVM over a *dedicated*
persist path, bypassing the cache hierarchy. Because the redo buffer is
inside the persistence domain, a store is durable on buffer entry; Capri's
costs are

* compiler-inserted region management code (prologue/epilogue and log
  bookkeeping, a few instructions per region) which — at ≈29-instruction
  regions — recurs 11× as often as PPA's boundaries, and
* the dedicated path's bandwidth (evaluated at a realistic 4 GB/s instead
  of Capri's original 32 GB/s): when the redo buffer's drain falls behind,
  store commits backpressure until entries free up.
"""

from __future__ import annotations

import random
from dataclasses import replace

from repro.config import NvmConfig
from repro.core.region import RegionTracker
from repro.isa.instructions import Instruction
from repro.memory.nvm import NvmModel
from repro.memory.writebuffer import WriteBuffer
from repro.persistence.base import PersistencePolicy
from repro.pipeline.stats import StoreRecord

DEFAULT_MEAN_REGION = 29
DEFAULT_PATH_BANDWIDTH_GBS = 4.0
REDO_BUFFER_BYTES = 54 << 10
# The region-commit (seal) micro-op occupies the retire stage for a few
# cycles while the redo buffer's region descriptor is closed and the undo/
# redo log pointers are updated; nothing younger may retire past it.
SEAL_STALL_CYCLES = 14


class CapriPolicy(PersistencePolicy):
    """Compiler regions + battery-backed redo buffer + dedicated path."""

    name = "capri"

    def __init__(self, mean_region_length: int = DEFAULT_MEAN_REGION,
                 path_bandwidth_gbs: float = DEFAULT_PATH_BANDWIDTH_GBS,
                 seed: int = 0xCA9B1) -> None:
        super().__init__()
        if mean_region_length < 2:
            raise ValueError("regions need at least two instructions")
        self.mean_region_length = mean_region_length
        self.path_bandwidth_gbs = path_bandwidth_gbs
        self._rng = random.Random(seed)
        self._next_boundary = 0
        self._commit_floor = 0.0
        self.path: NvmModel | None = None
        self.redo: WriteBuffer | None = None
        self.regions: RegionTracker | None = None

    def attach(self, core) -> None:
        super().attach(core)
        nvm_cfg: NvmConfig = core.config.memory.nvm
        path_cfg = replace(nvm_cfg,
                           write_bandwidth_gbs=self.path_bandwidth_gbs,
                           wpq_entries=REDO_BUFFER_BYTES // 64,
                           persist_path_latency=0)
        self.path = NvmModel(path_cfg)
        if core.tracer is not None:
            from repro.telemetry import attach_nvm_tracer

            attach_nvm_tracer(self.path, core.tracer)
        # The redo buffer coalesces same-line stores while the line is
        # queued for its drain to NVM, like PPA's write buffer.
        self.redo = WriteBuffer(REDO_BUFFER_BYTES // 64, self.path,
                                tracer=core.tracer)
        self.regions = RegionTracker(core.stats.regions,
                                     tracer=core.tracer)
        self._next_boundary = self._draw_region_length()

    def _draw_region_length(self) -> int:
        p = 1.0 / self.mean_region_length
        length = 1
        while self._rng.random() > p:
            length += 1
        return max(2, length)

    # ------------------------------------------------------------------
    # Hooks
    # ------------------------------------------------------------------

    def pre_rename(self, seq: int, instr: Instruction, t: float) -> float:
        if seq < self._next_boundary:
            return t
        assert self.core is not None and self.regions is not None
        # The seal micro-op blocks retirement of the next region briefly.
        self._commit_floor = self.core.last_commit_time + SEAL_STALL_CYCLES
        self.regions.close(seq, self.core.last_commit_time,
                           self._commit_floor, "compiler")
        self._next_boundary = seq + self._draw_region_length()
        return t

    def adjust_commit(self, seq: int, tentative: float) -> float:
        return max(tentative, self._commit_floor)

    def store_commit_time(self, instr: Instruction, seq: int,
                          tentative: float) -> float:
        """A store commits into the redo buffer; if the buffer's drain to
        NVM has fallen behind, the commit waits for a free entry."""
        assert self.redo is not None
        assert instr.addr is not None
        # Tentative commit times are monotone, and every future store
        # enters the redo buffer at its own tentative commit — a sound
        # eviction floor for closed coalescing windows.
        self.redo.advance_floor(tentative)
        op = self.redo.persist_store(instr.line_addr, tentative,
                                     instr.addr, instr.value or 0)
        return max(tentative, op.durable_at)

    def store_committed(self, record: StoreRecord,
                        merge_time: float) -> None:
        assert self.regions is not None
        record.region_id = self.regions.region_id
        # Durable on redo-buffer entry (battery-backed).
        record.durable_at = record.commit_time
        self.regions.note_store()
        self._trace_store(record)

    def finish(self, end_time: float) -> None:
        assert self.core is not None and self.regions is not None
        self.regions.close(self.core.stats.instructions, end_time,
                           end_time, "end")
        self.core.stats.extra["capri_path_writes"] = (
            self.path.stats.line_writes if self.path else 0)
