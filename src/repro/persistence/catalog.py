"""Registry of persistence schemes and their qualitative traits.

``make_policy``/``scheme_backend`` are how experiments construct a run for a
named scheme; ``SCHEME_TRAITS`` carries the qualitative attributes behind
the paper's Table 1 (PPA vs clwb) and Table 6 (WSP comparison).
"""

from __future__ import annotations

from typing import Callable

from repro.persistence.base import PersistencePolicy, SchemeTraits
from repro.persistence.baseline import NoPersistencePolicy
from repro.persistence.capri import CapriPolicy
from repro.persistence.ppa import PpaPolicy
from repro.persistence.replaycache import ReplayCachePolicy
from repro.persistence.sbgate import SbGatePolicy
from repro.persistence.swlog import RedoLogPolicy, UndoLogPolicy

_POLICIES: dict[str, Callable[[], PersistencePolicy]] = {
    "baseline": NoPersistencePolicy,
    "ppa": PpaPolicy,
    "replaycache": ReplayCachePolicy,
    "capri": CapriPolicy,
    "eadr": NoPersistencePolicy,      # ideal PSP: persistence is free,
    "dram-only": NoPersistencePolicy,  # but the platform changes (backend)
    "psp-undolog": UndoLogPolicy,     # software PSP, Section 2.2
    "psp-redolog": RedoLogPolicy,
    "sb-gate": SbGatePolicy,  # Section 6's rejected alternative
}

_BACKENDS: dict[str, str] = {
    "baseline": "pmem-memory-mode",
    "ppa": "pmem-memory-mode",
    "replaycache": "pmem-memory-mode",
    "capri": "pmem-memory-mode",
    "eadr": "pmem-app-direct",
    "dram-only": "dram-only",
    "psp-undolog": "pmem-app-direct",
    "psp-redolog": "pmem-app-direct",
    "sb-gate": "pmem-memory-mode",
}

SCHEME_TRAITS: dict[str, SchemeTraits] = {
    "ppa": SchemeTraits(
        name="PPA", whole_system=True, hardware_complexity="low",
        energy_requirement="low", needs_recompilation=False,
        transparent=True, enables_dram_cache=True, enables_multi_mc=True,
        occupies_store_queue=False, tracks_single_stores=False,
        needs_snooping=False, reaches_nvm=True),
    "clwb": SchemeTraits(
        name="CLWB in x86", whole_system=False, hardware_complexity="none",
        energy_requirement="low", needs_recompilation=True,
        transparent=False, enables_dram_cache=False, enables_multi_mc=True,
        occupies_store_queue=True, tracks_single_stores=True,
        needs_snooping=True, reaches_nvm=False),
    "wsp-ups": SchemeTraits(
        name="WSP (Narayanan)", whole_system=True,
        hardware_complexity="extremely-high",
        energy_requirement="extremely-high", needs_recompilation=False,
        transparent=True, enables_dram_cache=True, enables_multi_mc=True,
        occupies_store_queue=False, tracks_single_stores=False,
        needs_snooping=False, reaches_nvm=True),
    "capri": SchemeTraits(
        name="Capri", whole_system=True, hardware_complexity="high",
        energy_requirement="high", needs_recompilation=True,
        transparent=True, enables_dram_cache=True, enables_multi_mc=False,
        occupies_store_queue=False, tracks_single_stores=True,
        needs_snooping=False, reaches_nvm=True),
    "replaycache": SchemeTraits(
        name="ReplayCache", whole_system=True, hardware_complexity="low",
        energy_requirement="low", needs_recompilation=True,
        transparent=True, enables_dram_cache=False, enables_multi_mc=True,
        occupies_store_queue=True, tracks_single_stores=True,
        needs_snooping=True, reaches_nvm=True),
}


def scheme_names() -> list[str]:
    """Every runnable scheme name."""
    return sorted(_POLICIES)


def make_policy(scheme: str) -> PersistencePolicy:
    """Instantiate the persistence policy for a named scheme."""
    try:
        factory = _POLICIES[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; options: {scheme_names()}") from None
    return factory()


def scheme_backend(scheme: str) -> str:
    """The memory backend a named scheme runs on."""
    try:
        return _BACKENDS[scheme]
    except KeyError:
        raise ValueError(
            f"unknown scheme {scheme!r}; options: {scheme_names()}") from None
