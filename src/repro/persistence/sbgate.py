"""The store-buffer-gating alternative PPA rejects (Section 6).

One might keep retired stores gated in the store buffer (SB) until they are
durable instead of letting them merge into L1D — no MaskReg, no CSQ. The
paper rejects this design: the SB is a small CAM that cannot be enlarged
cheaply, region-level persistence then forbids inter-region coalescing and
out-of-order SB drain, and the gated entries throttle the pipeline whenever
stores outpace the NVM.

This policy models the design so the argument is measurable: each store's
SQ entry is held until the store is *durable* (not merely merged), stores
drain to NVM in order with only same-line coalescing inside the buffer, and
SQ exhaustion stalls rename exactly as the paper predicts.
"""

from __future__ import annotations

from repro.core.region import RegionTracker
from repro.isa.instructions import Instruction
from repro.persistence.base import PersistencePolicy
from repro.pipeline.stats import StoreRecord


class SbGatePolicy(PersistencePolicy):
    """Gate retired stores in the store buffer until durable."""

    name = "sb-gate"

    def __init__(self) -> None:
        super().__init__()
        self.regions: RegionTracker | None = None
        self._last_durable = 0.0

    def attach(self, core) -> None:
        super().attach(core)
        self.regions = RegionTracker(core.stats.regions,
                                     tracer=core.tracer)
        self._last_durable = 0.0

    def store_queue_release(self, instr: Instruction, seq: int,
                            merge_time: float) -> float:
        """THE cost: the SQ entry is occupied until durability, so the SQ
        backs up whenever stores outpace the NVM write path."""
        assert self.core is not None
        core = self.core
        # In-order SB drain straight to NVM (no inter-region coalescing;
        # the write leaves when it reaches the SB head).
        submit = max(merge_time, self._last_durable)
        ticket = core.nvm.write_line(
            submit + core.nvm.cfg.persist_path_latency, instr.line_addr)
        self._last_durable = ticket.accepted_at
        return ticket.accepted_at

    def store_committed(self, record: StoreRecord,
                        merge_time: float) -> None:
        assert self.regions is not None
        record.region_id = self.regions.region_id
        self.regions.note_store()
        record.durable_at = self._last_durable
        self._trace_store(record)

    def finish(self, end_time: float) -> None:
        assert self.core is not None and self.regions is not None
        self.regions.close(self.core.stats.instructions, end_time,
                           max(end_time, self._last_durable), "end")
