"""The PPA persistence policy: hardware store integrity + dynamic regions.

This is the paper's mechanism, end to end:

* On store commit, the data operand's physical register is masked in
  MaskReg (so later redefinitions cannot reclaim it) and a CSQ entry is
  populated; the L1D controller launches an asynchronous persist of the
  store's line (Sections 3.2/3.3).
* When rename runs out of free physical registers, PPA ends the region: it
  waits until the persist counter reaches zero, reclaims the masked
  registers, clears MaskReg + CSQ, and starts the next region (Section 4.2).
* A full CSQ and any synchronization primitive are implicit boundaries
  (Sections 4.2 and 6).
"""

from __future__ import annotations

from repro.core.csq import CommittedStoreQueue
from repro.core.region import RegionTracker
from repro.isa.instructions import Instruction, RegClass
from repro.persistence.base import PersistencePolicy
from repro.pipeline.stats import StoreRecord


class PpaPolicy(PersistencePolicy):
    """Dynamic store-integrity regions backed by the physical register file."""

    name = "ppa"

    def __init__(self, enforce_store_integrity: bool = True) -> None:
        super().__init__()
        # The negative knob: with store integrity off, committed store
        # registers are reclaimed normally and replay after a failure reads
        # whatever later value overwrote them — the corruption PPA prevents.
        self.enforce_store_integrity = enforce_store_integrity
        self.csq: CommittedStoreQueue | None = None
        self.regions: RegionTracker | None = None
        self._async = True
        self._last_store_commit = 0.0

    def attach(self, core) -> None:
        super().attach(core)
        self.csq = CommittedStoreQueue(core.config.ppa.csq_entries)
        self.regions = RegionTracker(core.stats.regions,
                                     tracer=core.tracer)
        self._async = core.config.ppa.async_writeback

    # ------------------------------------------------------------------
    # Region boundary machinery
    # ------------------------------------------------------------------

    def _close_region(self, end_seq: int, boundary_time: float,
                      cause: str) -> float:
        """Drain the region's stores, reclaim masked registers, clear
        CSQ/MaskReg; returns the drain-complete cycle."""
        assert self.core is not None and self.csq is not None
        assert self.regions is not None
        drain = self.core.wb.region_drain_time(boundary_time)
        self.core.wb.reset_region(drain)
        for rf in self.core.rf.values():
            rf.end_region(drain)
        self.csq.clear()
        self.regions.close(end_seq, boundary_time, drain, cause)
        return drain

    def rename_blocked(self, cls: RegClass, want_time: float,
                       seq: int) -> float:
        """PRF exhausted: the dynamic region boundary of Section 4.2.

        The renamer stalls and retries; if commits are about to reclaim
        unmasked registers (a transient in-flight spike), it simply waits —
        the barrier is injected only when the free list is starved by
        masked store registers that only a region boundary can release.
        """
        assert self.core is not None
        core = self.core
        deferred = sum(rf.deferred_count for rf in core.rf.values())
        next_free = core.rf[cls].next_free_time()
        if deferred == 0 and next_free is None:
            raise RuntimeError(
                f"{core.rf[cls].name} PRF deadlock: no masked registers to "
                "reclaim and no reclamation pending")
        if (next_free is not None
                and deferred < core.config.ppa.min_deferred_for_boundary):
            return next_free
        # The barrier retires off the ROB-drain path: the region can close
        # as soon as its committed stores are durable. Masked-register
        # reclamation is safe without draining younger non-store
        # instructions (any reader of a deferred register retired before
        # the redefining instruction whose commit deferred it). Stores
        # still in flight at the boundary are accounted to the next region,
        # which recovery handles correctly because CSQ replay is
        # program-ordered and idempotent.
        boundary = max(want_time, self._last_store_commit)
        drain = self._close_region(seq, boundary, "prf")
        return drain + 1.0

    def store_commit_time(self, instr: Instruction, seq: int,
                          tentative: float) -> float:
        assert self.csq is not None
        if self.csq.is_full:
            # Implicit boundary: the store cannot commit until the prior
            # region's stores are durable and the CSQ is cleared.
            self.csq.overflow_boundaries += 1
            drain = self._close_region(seq, tentative, "csq")
            tentative = max(tentative, drain)
        if not self._async:
            # Ablation: synchronous persistence — the store commits only
            # once every previously issued persist is durable.
            tentative = max(tentative,
                            self.core.wb.region_drain_time(tentative))
        return tentative

    def sync_commit_time(self, tentative: float, seq: int) -> float:
        """Atomics/fences cannot commit until the region is durable."""
        drain = self._close_region(seq + 1, tentative, "sync")
        return max(tentative, drain)

    def store_committed(self, record: StoreRecord,
                        merge_time: float) -> None:
        assert self.core is not None and self.csq is not None
        assert self.regions is not None
        record.region_id = self.regions.region_id
        self._last_store_commit = record.commit_time
        if self.enforce_store_integrity:
            cls = RegClass(record.data_cls)
            self.core.rf[cls].mask(record.data_preg)
        self.csq.push(record)
        self.regions.note_store()
        # Commits are monotone and every future merge trails its commit,
        # so the commit time is a sound eviction floor for the write
        # buffer's closed coalescing windows.
        self.core.wb.advance_floor(record.commit_time)
        self.core.wb.persist_store(
            record.line_addr, merge_time, record.addr, record.value)
        record.durable_at = self.core.wb.last_store_durable
        self._trace_store(record)

    def finish(self, end_time: float) -> None:
        assert self.core is not None
        self._close_region(self.core.stats.instructions or 0,
                           end_time, "end")
