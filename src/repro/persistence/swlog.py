"""Software partial-system persistence via undo/redo logging (Section 2.2).

The paper's argument against PSP is that even when programmers shoulder the
burden, transaction-based persistence is slow: every durable store needs a
log entry ordered before it (undo) or a deferred in-place update (redo),
with clwb+sfence persistence barriers at transaction ends — all on the
app-direct platform that forfeits the DRAM cache.

These policies model that cost honestly on our substrate so the repository
can place PPA against *software* PSP, not just the ideal eADR/BBB bound of
Figure 10:

* :class:`UndoLogPolicy` — write-ahead undo logging: the log entry must be
  durable *before* the store commits (an ordering stall per store), the
  data line is flushed asynchronously, and the transaction-ending sfence
  drains everything.
* :class:`RedoLogPolicy` — redo logging: stores go to the log during the
  transaction (asynchronous), and the commit fence is followed by the
  in-place writeback of every logged line (doubling NVM writes but hiding
  the per-store ordering stall).

Both group stores into fixed-size failure-atomic transactions, standing in
for the persistent-object-level sections a programmer would write.
"""

from __future__ import annotations

from repro.core.region import RegionTracker
from repro.isa.instructions import Instruction
from repro.persistence.base import PersistencePolicy
from repro.pipeline.stats import StoreRecord

DEFAULT_TRANSACTION_STORES = 8
# clwb-style flush through the coherent hierarchy (no DRAM cache here,
# but still snooping plus the controller path).
FLUSH_LATENCY_CYCLES = 45


class _SoftwareLogPolicy(PersistencePolicy):
    """Common machinery: transactions delimited by store count."""

    def __init__(self, transaction_stores: int = DEFAULT_TRANSACTION_STORES,
                 ) -> None:
        super().__init__()
        if transaction_stores <= 0:
            raise ValueError("transactions need at least one store")
        self.transaction_stores = transaction_stores
        self.regions: RegionTracker | None = None
        self._txn_stores = 0
        self._txn_durable = 0.0
        self._commit_floor = 0.0
        self.log_writes = 0

    def attach(self, core) -> None:
        super().attach(core)
        self.regions = RegionTracker(core.stats.regions,
                                     tracer=core.tracer)
        self._txn_stores = 0
        self._txn_durable = 0.0
        self._commit_floor = 0.0
        self.log_writes = 0

    def adjust_commit(self, seq: int, tentative: float) -> float:
        return max(tentative, self._commit_floor)

    def _log_write(self, time: float, line_addr: int) -> float:
        """One NVM line write on the log path; returns admission time."""
        assert self.core is not None
        ticket = self.core.nvm.write_line(time + FLUSH_LATENCY_CYCLES,
                                          line_addr)
        self.log_writes += 1
        return ticket.accepted_at

    def _end_transaction(self, seq: int, commit_time: float) -> None:
        """The transaction-ending sfence: nothing younger commits until
        the transaction's flushes are durable."""
        assert self.regions is not None
        drain = max(commit_time, self._txn_durable)
        self._commit_floor = drain
        self.regions.close(seq + 1, commit_time, drain, "compiler")
        self._txn_stores = 0
        self._txn_durable = 0.0

    def finish(self, end_time: float) -> None:
        assert self.core is not None and self.regions is not None
        self.regions.close(self.core.stats.instructions, end_time,
                           max(end_time, self._txn_durable), "end")
        self.core.stats.extra["log_writes"] = self.log_writes


class UndoLogPolicy(_SoftwareLogPolicy):
    """Write-ahead undo logging: log durable before the store commits."""

    name = "psp-undolog"

    def store_commit_time(self, instr: Instruction, seq: int,
                          tentative: float) -> float:
        # The undo entry (old value + address) must persist first.
        log_durable = self._log_write(tentative, instr.line_addr ^ 0x40)
        return max(tentative, log_durable, self._commit_floor)

    def store_committed(self, record: StoreRecord,
                        merge_time: float) -> None:
        assert self.regions is not None
        record.region_id = self.regions.region_id
        self.regions.note_store()
        # Flush the data line itself, asynchronously until the fence.
        record.durable_at = self._log_write(merge_time, record.line_addr)
        self._trace_store(record)
        self._txn_durable = max(self._txn_durable, record.durable_at)
        self._txn_stores += 1
        if self._txn_stores >= self.transaction_stores:
            self._end_transaction(record.seq, record.commit_time)


class RedoLogPolicy(_SoftwareLogPolicy):
    """Redo logging: log asynchronously, write back in place after commit."""

    name = "psp-redolog"

    def store_committed(self, record: StoreRecord,
                        merge_time: float) -> None:
        assert self.regions is not None
        record.region_id = self.regions.region_id
        self.regions.note_store()
        # Append to the redo log (asynchronous, sequential log lines).
        record.durable_at = self._log_write(merge_time,
                                            0x8000_0000 + 64 * self.log_writes)
        self._trace_store(record)
        self._txn_durable = max(self._txn_durable, record.durable_at)
        self._txn_stores += 1
        if self._txn_stores >= self.transaction_stores:
            # Commit fence, then the in-place writeback of the data lines
            # (modelled as one more flush per store of the transaction).
            inplace = record.commit_time
            for __ in range(self.transaction_stores):
                inplace = max(inplace,
                              self._log_write(record.commit_time,
                                              record.line_addr))
            self._txn_durable = max(self._txn_durable, inplace)
            self._end_transaction(record.seq, record.commit_time)
