"""Persistence schemes: PPA, the baseline, and the paper's comparators."""

from repro.persistence.base import PersistencePolicy, SchemeTraits
from repro.persistence.baseline import NoPersistencePolicy
from repro.persistence.ppa import PpaPolicy
from repro.persistence.replaycache import ReplayCachePolicy
from repro.persistence.capri import CapriPolicy
from repro.persistence.sbgate import SbGatePolicy
from repro.persistence.swlog import RedoLogPolicy, UndoLogPolicy
from repro.persistence.catalog import (
    SCHEME_TRAITS,
    make_policy,
    scheme_backend,
    scheme_names,
)

__all__ = [
    "CapriPolicy",
    "NoPersistencePolicy",
    "PersistencePolicy",
    "PpaPolicy",
    "RedoLogPolicy",
    "SbGatePolicy",
    "ReplayCachePolicy",
    "SCHEME_TRAITS",
    "SchemeTraits",
    "UndoLogPolicy",
    "make_policy",
    "scheme_backend",
    "scheme_names",
]
