"""Interface every persistence scheme implements against the core model.

A policy plugs into :class:`repro.pipeline.core.OoOCore` at five points:

* ``pre_rename`` — compiler-formed schemes inject persist barriers in front
  of instructions here; returns the earliest cycle rename may proceed.
* ``rename_blocked`` — the rename stage found no free physical register.
  The baseline waits for a commit-time reclamation; PPA turns the event into
  a dynamic region boundary (Section 4.2).
* ``store_commit_time`` / ``sync_commit_time`` — adjust a store's or
  synchronization primitive's commit cycle (CSQ-full boundaries, barriers).
* ``store_committed`` — the store retired; schedule its persistence.
* ``finish`` — the trace ended; close the open region.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.isa.instructions import Instruction, RegClass

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.core import OoOCore
    from repro.pipeline.stats import StoreRecord


@dataclass(frozen=True)
class SchemeTraits:
    """Qualitative attributes used by the paper's Tables 1 and 6."""

    name: str
    whole_system: bool
    hardware_complexity: str       # "none" | "low" | "high" | "extremely-high"
    energy_requirement: str        # "low" | "high" | "extremely-high"
    needs_recompilation: bool
    transparent: bool
    enables_dram_cache: bool
    enables_multi_mc: bool
    occupies_store_queue: bool     # Table 1 (clwb vs PPA)
    tracks_single_stores: bool
    needs_snooping: bool
    reaches_nvm: bool


class PersistencePolicy:
    """Base policy: no persistence actions at all."""

    name = "abstract"

    def __init__(self) -> None:
        self.core: "OoOCore | None" = None

    def attach(self, core: "OoOCore") -> None:
        """Bind to the core at the start of a run."""
        self.core = core

    # ------------------------------------------------------------------
    # Hooks (default: behave like a conventional core)
    # ------------------------------------------------------------------

    def pre_rename(self, seq: int, instr: Instruction,
                   t: float) -> float:
        """Given the candidate rename cycle ``t``, return the (possibly
        delayed) cycle rename may proceed — compiler-formed schemes inject
        their persist barriers here."""
        return t

    def rename_blocked(self, cls: RegClass, want_time: float,
                       seq: int) -> float:
        """No free register in ``cls`` at ``want_time``; return resume time."""
        assert self.core is not None
        rf = self.core.rf[cls]
        next_free = rf.next_free_time()
        if next_free is None:
            raise RuntimeError(
                f"{rf.name} PRF deadlock: no reclamation pending")
        return next_free

    def adjust_commit(self, seq: int, tentative: float) -> float:
        """Adjust any instruction's commit cycle (retire-stage effects)."""
        return tentative

    def store_commit_time(self, instr: Instruction, seq: int,
                          tentative: float) -> float:
        return tentative

    def sync_commit_time(self, tentative: float, seq: int) -> float:
        return tentative

    def store_queue_release(self, instr: Instruction, seq: int,
                            merge_time: float) -> float:
        """When the store's SQ entry frees. Conventionally that is the L1D
        merge; schemes that gate stores hold the entry longer."""
        return merge_time

    def store_committed(self, record: "StoreRecord",
                        merge_time: float) -> None:
        """The store retired and merged into L1D at ``merge_time``."""

    def finish(self, end_time: float) -> None:
        """The trace is exhausted."""

    # ------------------------------------------------------------------
    # Telemetry
    # ------------------------------------------------------------------

    def _trace_store(self, record: "StoreRecord") -> None:
        """Emit the store's commit→durable span on the core's tracer.

        Call after ``record.durable_at`` is final; a no-op without a
        tracer (one attribute load + one ``is None`` test).
        """
        core = self.core
        if core is None or core.tracer is None:
            return
        end = record.durable_at
        if end == float("inf") or end < record.commit_time:
            end = record.commit_time
        core.tracer.span("stores", f"store {record.seq}",
                         record.commit_time, end, cat="store",
                         pc=record.pc, line=record.line_addr,
                         region=record.region_id)
        core.tracer.metrics.histogram("store.commit_to_durable").add(
            end - record.commit_time)
