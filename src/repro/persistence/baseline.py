"""The paper's baseline: original binaries on PMEM's memory mode.

No persistence, no crash consistency — committed stores live in the volatile
cache hierarchy and reach NVM only via dirty DRAM-cache evictions. Rename
stalls caused by PRF exhaustion simply wait for commit-time reclamation.
"""

from __future__ import annotations

from repro.persistence.base import PersistencePolicy


class NoPersistencePolicy(PersistencePolicy):
    """Conventional out-of-order core behaviour."""

    name = "baseline"
