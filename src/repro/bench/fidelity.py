"""The paper-fidelity scoreboard: perf work can't silently bend outputs.

Runs paper experiments through the experiments registry and scores the
reproduced trends against the claims recorded in EXPERIMENTS.md. Two
tiers:

* ``quick`` — a curated subset with reduced trace lengths and app
  subsets, checking the *shape* claims that hold even on tiny runs (the
  same calibration the tier-1 experiment tests use). This is what the CI
  bench job runs on every PR.
* ``full`` — every machine-checkable expectation in
  :data:`repro.analysis.report.PAPER_EXPECTATIONS` at the default
  figure lengths; minutes, not seconds.

A fidelity failure alongside a bench-compare "model drift" flag is the
observatory's core contract: a perf PR that changes simulated outputs
trips both, loudly.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Callable

QUICK_APPS = ("gcc", "rb")
QUICK_LENGTH = 2_000


@dataclass(frozen=True)
class FidelityCheck:
    """One scoreboard row: run an experiment, check its summary."""

    experiment_id: str
    claim: str
    check: Callable[[dict], bool]
    kwargs: dict = field(default_factory=dict)


# Quick-tier shape claims, calibrated to hold at QUICK_LENGTH with
# QUICK_APPS (mirrors tests/test_experiments.py's light assertions, with
# the margins EXPERIMENTS.md records).
QUICK_CHECKS: tuple[FidelityCheck, ...] = (
    FidelityCheck(
        "fig1", "ReplayCache costs multiples (paper ~5x)",
        lambda s: s["gmean_slowdown"] > 2.0,
        {"apps": QUICK_APPS, "length": QUICK_LENGTH}),
    FidelityCheck(
        "fig8", "PPA cheap, Capri clearly costlier (paper 2% vs 26%)",
        lambda s: 1.0 <= s["ppa_gmean"] < 1.2
        and s["capri_gmean"] > s["ppa_gmean"],
        {"apps": QUICK_APPS, "length": QUICK_LENGTH}),
    FidelityCheck(
        "fig10", "ideal PSP pays a large multiple over PPA (paper 1.39x)",
        lambda s: s["psp_gmean"] > s["ppa_gmean"],
        {"apps": ("mcf", "lbm"), "length": QUICK_LENGTH}),
    FidelityCheck(
        "fig13", "regions are mostly non-store instructions",
        lambda s: s["mean_others"] > s["mean_stores"],
        {"apps": QUICK_APPS, "length": QUICK_LENGTH}),
    FidelityCheck(
        "tab4", "PPA adds ~0.005% core area",
        lambda s: s["core_area_fraction_pct"] < 0.01),
    FidelityCheck(
        "sec713", "1838 B checkpoint in ~0.91us",
        lambda s: s["total_bytes"] == 1838.0
        and abs(s["total_us"] - 0.91) < 0.02),
    FidelityCheck(
        "litmus", "crash states are exactly the Px86-TSO-allowed ones",
        lambda s: s["soundness_violations"] == 0.0 and s["checked"] > 0
        and s["mean_coverage"] > 0.5),
)


@dataclass
class FidelityLine:
    """One graded scoreboard entry."""

    experiment_id: str
    claim: str
    holds: bool
    elapsed: float
    summary: dict[str, float] = field(default_factory=dict)
    error: str | None = None

    def to_dict(self) -> dict[str, Any]:
        return {
            "experiment_id": self.experiment_id,
            "claim": self.claim,
            "holds": self.holds,
            "elapsed": self.elapsed,
            "summary": dict(self.summary),
            "error": self.error,
        }


@dataclass
class FidelityReport:
    """A graded scoreboard: tier + per-claim verdicts."""

    tier: str
    lines: list[FidelityLine] = field(default_factory=list)

    @property
    def passed(self) -> int:
        return sum(1 for line in self.lines if line.holds)

    @property
    def ok(self) -> bool:
        return bool(self.lines) and self.passed == len(self.lines)

    def to_dict(self) -> dict[str, Any]:
        return {
            "tier": self.tier,
            "ok": self.ok,
            "passed": self.passed,
            "total": len(self.lines),
            "lines": [line.to_dict() for line in self.lines],
        }

    def to_text(self) -> str:
        lines = [f"== paper-fidelity scoreboard (tier: {self.tier}) =="]
        for line in self.lines:
            mark = "OK " if line.holds else "FAIL"
            lines.append(f"[{mark}] {line.experiment_id:8s} {line.claim} "
                         f"({line.elapsed:.1f}s)")
            if line.error:
                lines.append(f"       error: {line.error}")
        lines.append(f"{self.passed}/{len(self.lines)} claims hold -> "
                     f"{'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)

    def to_markdown(self) -> str:
        from repro.analysis.report import markdown_table

        rows = [["✅" if line.holds else "❌", line.experiment_id,
                 line.claim, f"{line.elapsed:.1f}s"]
                for line in self.lines]
        table = markdown_table(["", "exp", "claim", "time"], rows)
        return (f"### Paper-fidelity scoreboard ({self.tier}: "
                f"{self.passed}/{len(self.lines)})\n\n{table}")


ProgressFn = Callable[[str, int, int], None]


def _grade(check: FidelityCheck) -> FidelityLine:
    from repro.experiments.registry import get_experiment

    start = time.perf_counter()
    try:
        result = get_experiment(check.experiment_id)(**check.kwargs)
        holds = bool(check.check(result.summary))
        summary, error = result.summary, None
    except KeyError as exc:
        # A missing summary key means the experiment no longer reports
        # what the claim checks — that is a failure, not a crash.
        holds, summary, error = False, {}, f"missing summary key {exc}"
    return FidelityLine(
        experiment_id=check.experiment_id, claim=check.claim, holds=holds,
        elapsed=time.perf_counter() - start, summary=summary, error=error)


def _full_checks() -> tuple[FidelityCheck, ...]:
    """Every machine-checkable EXPERIMENTS.md claim, at default lengths.
    """
    from repro.analysis.report import PAPER_EXPECTATIONS

    return tuple(
        FidelityCheck(e.experiment_id, e.claim, e.check)
        for e in PAPER_EXPECTATIONS)


def run_fidelity(tier: str = "quick",
                 checks: tuple[FidelityCheck, ...] | None = None,
                 progress: ProgressFn | None = None) -> FidelityReport:
    """Run and grade the scoreboard for one tier.

    ``checks`` overrides the tier's check list (tests inject synthetic
    pass/fail claims through it).
    """
    if checks is None:
        if tier == "quick":
            checks = QUICK_CHECKS
        elif tier == "full":
            checks = _full_checks()
        else:
            raise ValueError(
                f"unknown fidelity tier {tier!r}; options: quick, full")
    report = FidelityReport(tier=tier)
    for index, check in enumerate(checks):
        if progress is not None:
            progress(check.experiment_id, index, len(checks))
        report.lines.append(_grade(check))
    return report
