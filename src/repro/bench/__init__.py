"""The simulator performance observatory.

PR 3 made the *simulated hardware* observable; this package makes the
*simulator as software* observable:

* :mod:`repro.bench.harness` — deterministic benchmark runs (pinned
  seeds, warmup, min-of-N) measuring wall-clock, simulated cycles/s, and
  retired instructions/s for a curated suite, written as schema-versioned
  ``BENCH_<date>_<shortsha>.json`` artifacts;
* :mod:`repro.bench.profile` — cProfile hot-path attribution folded into
  per-component tables (WriteBuffer / NvmModel / rename / checkpoint),
  plus telemetry-metric attribution via :class:`MetricsRegistry`;
* :mod:`repro.bench.compare` — diff two BENCH artifacts and gate on
  regressions beyond a noise threshold;
* :mod:`repro.bench.fidelity` — score reproduced paper trends against the
  claims recorded in EXPERIMENTS.md, so perf work can't silently bend
  model outputs.

Nothing in the simulator imports this package: ``import repro`` and an
untraced :func:`repro.simulate` must never pull in ``repro.bench`` (the
zero-overhead guard in ``tests/test_bench.py`` enforces it, like PR 3's
tracer guard). Use ``python -m repro.bench`` or import it explicitly.
"""

from repro.bench.compare import CompareReport, compare_reports
from repro.bench.fingerprint import EnvFingerprint, collect_fingerprint
from repro.bench.harness import (
    BENCH_SCHEMA,
    BenchReport,
    BenchResult,
    artifact_name,
    load_report,
    run_suite,
)
from repro.bench.suite import SUITES, suite_benchmarks

__all__ = [
    "BENCH_SCHEMA",
    "BenchReport",
    "BenchResult",
    "CompareReport",
    "EnvFingerprint",
    "SUITES",
    "artifact_name",
    "collect_fingerprint",
    "compare_reports",
    "load_report",
    "run_suite",
    "suite_benchmarks",
]
