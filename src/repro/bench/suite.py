"""The curated benchmark suites the harness measures.

Every benchmark is deterministic by construction — pinned seed, pinned
length, pinned configuration — so repeated runs must produce *identical*
simulated cycle and instruction counts; only wall-clock varies. The
``simulate`` group covers the core models x persistence policies the
figures exercise (OoO and in-order and multicore x PPA / Capri / software
logging); the ``campaign`` group measures orchestrator throughput over an
uncached in-process campaign, aggregating only simulated (non-cache-hit)
points; the ``cohort`` group walks one wide lockstep cohort through a
pinned kernel (scalar / list-based / numpy columnar) so one artifact
records the vectorization speedup as a ratio of recorded throughputs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable

from repro.statsbase import sim_volume


@dataclass(frozen=True)
class Benchmark:
    """One named, deterministic measurement unit."""

    name: str
    group: str                 # "simulate" | "campaign" | "cohort"
    description: str
    # One measured execution; returns (simulated cycles, instructions).
    run: Callable[[], tuple[float, int]]
    # The simulate() kwargs behind a "simulate" benchmark, kept so the
    # profiler can re-run the identical workload under cProfile/tracing.
    sim_kwargs: dict[str, Any] = field(default_factory=dict)


def _simulate_benchmark(name: str, description: str,
                        **kwargs: Any) -> Benchmark:
    from repro.facade import simulate

    kwargs.setdefault("seed", 0)

    def run() -> tuple[float, int]:
        return sim_volume(simulate(**kwargs).stats)

    return Benchmark(name=name, group="simulate", description=description,
                     run=run, sim_kwargs=dict(kwargs))


def _campaign_benchmark(name: str, description: str, sweep: str,
                        apps: tuple[str, ...], length: int,
                        engine: str = "scalar") -> Benchmark:
    """Orchestrator throughput: an uncached, in-process sweep campaign.

    ``engine`` is pinned (never left to ``REPRO_ENGINE``) so each
    campaign benchmark measures one engine: the scalar kernel is the
    reference trajectory, ``engine="batched"`` measures the lockstep
    cohort kernel on the identical point set — counts must match the
    scalar run bit-exactly, so the determinism/drift gates apply to the
    batched engine too."""

    def run() -> tuple[float, int]:
        from repro.orchestrator.campaign import Campaign
        from repro.orchestrator.campaigns import build_sweep, sweep_spec

        campaign = Campaign(cache=None, jobs=1, sanitize=False,
                            engine=engine)
        campaign.extend(build_sweep(
            sweep_spec(sweep, apps=apps, length=length)))
        results = campaign.run()
        cycles = 0.0
        instructions = 0
        for result in results:
            if result.cache_hit or result.stats is None:
                # Cache hits cost no simulation and must not inflate
                # throughput; a failed point would understate it, so it
                # is an error below instead.
                continue
            c, i = sim_volume(result.stats)
            cycles += c
            instructions += i
        if campaign.telemetry.failures:
            raise RuntimeError(
                f"campaign benchmark {name}: "
                f"{campaign.telemetry.failures} points failed")
        return cycles, instructions

    return Benchmark(name=name, group="campaign",
                     description=description, run=run)


def _wide_cohort_points() -> list:
    """The 96-lane fig16-shaped cohort: one interned trace (mcf, length
    3000, seed 0) under ``ppa``, with the integer PRF size swept
    80..270 in steps of 2 — one point per lane, differing only in core
    configuration, exactly the shape the columnar kernel vectorizes."""
    from dataclasses import replace

    from repro.orchestrator.points import make_point

    points = []
    for lane in range(96):
        point = make_point("mcf", "ppa", length=3_000)
        core = replace(point.config.core, int_prf_size=80 + 2 * lane)
        points.append(replace(point, config=replace(point.config,
                                                    core=core)))
    return points


def _cohort_benchmark(name: str, description: str,
                      vector: bool | None) -> Benchmark:
    """One lockstep walk of the 96-lane wide cohort through a pinned
    kernel: ``vector=True`` forces the numpy columnar kernel,
    ``vector=False`` the list-based lane kernel (the PR 9 reference),
    and ``vector=None`` runs every lane through the scalar engine
    one-by-one. All three must retire bit-identical counts, so the
    drift gate cross-checks the kernels against each other; the
    vector:list instrs/s ratio is the tentpole's headline number and
    both operands are recorded in the same artifact."""

    def run() -> tuple[float, int]:
        cycles = 0.0
        instructions = 0
        points = _wide_cohort_points()
        if vector is None:
            from repro.orchestrator.execute import simulate_point

            for point in points:
                stats, _ = simulate_point(point, engine="scalar")
                c, i = sim_volume(stats)
                cycles += c
                instructions += i
            return cycles, instructions
        from repro.engine.batched import run_cohort

        for point, lane in zip(points, run_cohort(points, vector=vector)):
            if lane.error is not None:
                raise RuntimeError(
                    f"wide-cohort lane {point.name} failed: {lane.error}")
            c, i = sim_volume(lane.stats)
            cycles += c
            instructions += i
        return cycles, instructions

    return Benchmark(name=name, group="cohort", description=description,
                     run=run)


def _smoke_suite() -> list[Benchmark]:
    """Tiny suite for tests and CI plumbing checks (seconds, not minutes).
    """
    return [
        _simulate_benchmark(
            "sim:ooo:ppa:rb", "OoO core, PPA, red-black tree",
            trace_or_profile="rb", scheme="ppa", core="ooo", length=1_500),
        _simulate_benchmark(
            "sim:inorder:ppa:rb", "in-order value-CSQ core, PPA",
            trace_or_profile="rb", scheme="ppa", core="inorder",
            length=1_500),
        _campaign_benchmark(
            "campaign:fig16:rb", "orchestrator PRF sweep, 1 app",
            sweep="fig16", apps=("rb",), length=1_000),
    ]


def _quick_suite() -> list[Benchmark]:
    """The default suite: every core model x headline policy, plus
    orchestrator throughput — sized to finish in well under two minutes
    on a 1-CPU container."""
    return [
        _simulate_benchmark(
            "sim:ooo:baseline:gcc", "OoO core, no persistence (baseline)",
            trace_or_profile="gcc", scheme="baseline", core="ooo",
            length=12_000),
        _simulate_benchmark(
            "sim:ooo:ppa:gcc", "OoO core, PPA, gcc",
            trace_or_profile="gcc", scheme="ppa", core="ooo",
            length=12_000),
        _simulate_benchmark(
            "sim:ooo:ppa:mcf", "OoO core, PPA, memory-bound mcf",
            trace_or_profile="mcf", scheme="ppa", core="ooo",
            length=12_000),
        _simulate_benchmark(
            "sim:ooo:capri:gcc", "OoO core, Capri epoch persistence",
            trace_or_profile="gcc", scheme="capri", core="ooo",
            length=12_000),
        _simulate_benchmark(
            "sim:ooo:psp-undolog:rb", "OoO core, software undo logging",
            trace_or_profile="rb", scheme="psp-undolog", core="ooo",
            length=12_000),
        _simulate_benchmark(
            "sim:inorder:ppa:rb", "in-order value-CSQ core, PPA",
            trace_or_profile="rb", scheme="ppa", core="inorder",
            length=12_000),
        _simulate_benchmark(
            "sim:multicore:ppa:water-ns", "4-thread multicore, PPA",
            trace_or_profile="water-ns", scheme="ppa", core="multicore",
            threads=4, length=3_000),
        _campaign_benchmark(
            "campaign:fig16:rb", "orchestrator PRF sweep throughput",
            sweep="fig16", apps=("rb",), length=4_000),
        _campaign_benchmark(
            "campaign:fig16:rb:batched",
            "same PRF sweep through the batched cohort engine",
            sweep="fig16", apps=("rb",), length=4_000, engine="batched"),
    ]


def _full_suite() -> list[Benchmark]:
    """Quick plus longer traces, more applications, and a wider campaign.
    """
    return _quick_suite() + [
        _simulate_benchmark(
            "sim:ooo:ppa:lbm", "OoO core, PPA, streaming lbm",
            trace_or_profile="lbm", scheme="ppa", core="ooo",
            length=20_000),
        _simulate_benchmark(
            "sim:ooo:capri:mcf", "OoO core, Capri, memory-bound mcf",
            trace_or_profile="mcf", scheme="capri", core="ooo",
            length=20_000),
        _simulate_benchmark(
            "sim:ooo:psp-redolog:rb", "OoO core, software redo logging",
            trace_or_profile="rb", scheme="psp-redolog", core="ooo",
            length=12_000),
        _simulate_benchmark(
            "sim:ooo:replaycache:gcc", "OoO core, ReplayCache",
            trace_or_profile="gcc", scheme="replaycache", core="ooo",
            length=12_000),
        _simulate_benchmark(
            "sim:inorder:baseline:rb", "in-order core, no persistence",
            trace_or_profile="rb", scheme="baseline", core="inorder",
            length=12_000),
        _simulate_benchmark(
            "sim:multicore:ppa:barnes", "8-thread multicore, PPA",
            trace_or_profile="barnes", scheme="ppa", core="multicore",
            threads=8, length=4_000),
        _campaign_benchmark(
            "campaign:fig15:4apps", "orchestrator WPQ sweep, 4 apps",
            sweep="fig15", apps=("rb", "mcf", "lbm", "water-ns"),
            length=8_000),
    ]


def _batched_suite() -> list[Benchmark]:
    """Scalar-vs-batched engine head-to-head on identical sweeps: the
    CI engine gate runs this suite and compares the ``:batched``
    benchmarks against the best committed artifact — a throughput
    regression in the cohort kernel, or any count divergence from the
    scalar reference, fails the gate."""
    return [
        _campaign_benchmark(
            "campaign:fig16:rb", "orchestrator PRF sweep throughput",
            sweep="fig16", apps=("rb",), length=4_000),
        _campaign_benchmark(
            "campaign:fig16:rb:batched",
            "same PRF sweep through the batched cohort engine",
            sweep="fig16", apps=("rb",), length=4_000, engine="batched"),
        _campaign_benchmark(
            "campaign:fig15:4apps:batched",
            "WPQ sweep, 4 apps, batched cohort engine",
            sweep="fig15", apps=("rb", "mcf", "lbm", "water-ns"),
            length=4_000, engine="batched"),
    ]


def _wide_suite() -> list[Benchmark]:
    """The 96-lane wide-cohort head-to-head: scalar engine vs the
    list-based lane kernel vs the numpy columnar kernel on the identical
    fig16-shaped cohort. The artifact records instrs/s for all three, so
    the vector:list ratio — the vectorization headline — is pinned into
    the perf trajectory and gated alongside the counts."""
    return [
        _cohort_benchmark(
            "wide:cohort96:scalar",
            "96-lane fig16-shaped cohort, scalar engine lane-by-lane",
            vector=None),
        _cohort_benchmark(
            "wide:cohort96:list",
            "96-lane fig16-shaped cohort, list-based lane kernel",
            vector=False),
        _cohort_benchmark(
            "wide:cohort96:vector",
            "96-lane fig16-shaped cohort, numpy columnar kernel",
            vector=True),
    ]


SUITES: dict[str, Callable[[], list[Benchmark]]] = {
    "smoke": _smoke_suite,
    "quick": _quick_suite,
    "full": _full_suite,
    "batched": _batched_suite,
    "wide": _wide_suite,
}


def suite_benchmarks(suite: str) -> list[Benchmark]:
    """The named suite's benchmark list (fresh closures each call)."""
    try:
        factory = SUITES[suite]
    except KeyError:
        raise ValueError(f"unknown suite {suite!r}; "
                         f"options: {sorted(SUITES)}") from None
    benchmarks = factory()
    names = [b.name for b in benchmarks]
    if len(set(names)) != len(names):
        raise ValueError(f"suite {suite!r} has duplicate benchmark names")
    return benchmarks
