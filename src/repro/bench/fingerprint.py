"""Environment fingerprint stamped into every BENCH artifact.

Wall-clock numbers are only comparable when the environment is known, so
each artifact records the interpreter, platform, CPU, and the exact
simulator sources (the orchestrator cache's code salt — a hash over every
``repro/**/*.py``) plus the git revision when one is available.
"""

from __future__ import annotations

import os
import platform
import subprocess
import sys
from dataclasses import asdict, dataclass
from typing import Any


@dataclass(frozen=True)
class EnvFingerprint:
    """Where (and on what sources) a BENCH artifact was measured."""

    python: str            # e.g. "3.12.1"
    implementation: str    # e.g. "cpython"
    platform: str          # platform.platform()
    machine: str           # e.g. "x86_64"
    processor: str         # may be "" on minimal containers
    cpu_count: int
    source_hash: str       # hash of every repro/**/*.py (cache code salt)
    git_sha: str | None    # short HEAD revision, None outside a checkout

    def to_dict(self) -> dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "EnvFingerprint":
        return cls(**data)

    @property
    def short_sha(self) -> str:
        """Revision tag for artifact names: git sha, else source hash."""
        return self.git_sha or self.source_hash[:8]


def _git_short_sha() -> str | None:
    try:
        out = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True, text=True, timeout=10,
            cwd=os.path.dirname(os.path.abspath(__file__)))
    except (OSError, subprocess.SubprocessError):
        return None
    sha = out.stdout.strip()
    return sha if out.returncode == 0 and sha else None


def collect_fingerprint() -> EnvFingerprint:
    """Fingerprint the current interpreter, host, and simulator sources."""
    from repro.orchestrator.cache import code_salt

    return EnvFingerprint(
        python=platform.python_version(),
        implementation=sys.implementation.name,
        platform=platform.platform(),
        machine=platform.machine(),
        processor=platform.processor(),
        cpu_count=os.cpu_count() or 1,
        source_hash=code_salt(),
        git_sha=_git_short_sha(),
    )
