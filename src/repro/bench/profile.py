"""Hot-path attribution: where does a simulation's wall-clock go?

Wraps ``cProfile`` around one suite benchmark and folds the flat function
profile into per-component buckets (WriteBuffer, NvmModel, rename/PRF,
checkpoint, ...), so an optimisation PR knows where to aim before it
touches anything. For ``simulate`` benchmarks a second, traced execution
attributes *simulated work* through the existing
:class:`repro.telemetry.MetricsRegistry` — events recorded per component —
next to the *software cost* the profiler measured.
"""

from __future__ import annotations

import cProfile
import pstats
from dataclasses import dataclass, field
from typing import Any

from repro.bench.suite import Benchmark, suite_benchmarks

# Ordered (path fragment -> component) mapping; first match wins. Paths
# are matched against the profiled function's source file, normalised to
# forward slashes.
COMPONENTS: tuple[tuple[str, str], ...] = (
    ("repro/memory/writebuffer", "WriteBuffer"),
    ("repro/memory/nvm", "NvmModel"),
    ("repro/memory/cache", "CacheModel"),
    ("repro/memory/hierarchy", "MemorySystem"),
    ("repro/memory/prewarm", "WarmTemplates"),
    ("repro/pipeline/regfile", "Rename/PRF"),
    ("repro/pipeline/resources", "PipelineResources"),
    ("repro/pipeline/core", "OoOCore"),
    ("repro/pipeline/stats", "Stats"),
    ("repro/core/checkpoint", "Checkpoint"),
    ("repro/core/recovery", "Recovery"),
    ("repro/core/csq", "CSQ"),
    ("repro/core/region", "RegionTracker"),
    ("repro/core/", "PersistentProcessor"),
    ("repro/persistence/", "PersistencePolicy"),
    ("repro/workloads/interning", "TraceInterning"),
    ("repro/workloads/", "TraceGenerator"),
    ("repro/isa/decoded", "Predecode"),
    ("repro/isa/", "ISA"),
    ("repro/inorder/", "InOrderCore"),
    ("repro/multicore/", "Multicore"),
    ("repro/telemetry/", "Telemetry"),
    ("repro/orchestrator/", "Orchestrator"),
    ("repro/", "repro (other)"),
)


@dataclass
class ComponentSlice:
    """One component's share of the profiled run."""

    component: str
    self_time: float         # tottime summed over the bucket's functions
    calls: int

    def to_dict(self) -> dict[str, Any]:
        return {"component": self.component, "self_time": self.self_time,
                "calls": self.calls}


@dataclass
class ProfileReport:
    """Attribution tables for one profiled benchmark."""

    benchmark: str
    total_time: float
    components: list[ComponentSlice] = field(default_factory=list)
    # (function label, self time, calls) for the hottest functions.
    top_functions: list[tuple[str, float, int]] = field(
        default_factory=list)
    # Telemetry counter/histogram digests from a traced re-run, keyed by
    # metric name (empty when the benchmark can't run traced).
    metrics: dict[str, Any] = field(default_factory=dict)

    def to_dict(self) -> dict[str, Any]:
        return {
            "benchmark": self.benchmark,
            "total_time": self.total_time,
            "components": [c.to_dict() for c in self.components],
            "top_functions": [
                {"function": name, "self_time": t, "calls": calls}
                for name, t, calls in self.top_functions],
            "metrics": self.metrics,
        }

    def to_text(self, top: int = 10) -> str:
        lines = [f"== profile: {self.benchmark} "
                 f"({self.total_time:.3f}s total) ==",
                 f"{'component':<20} {'self s':>8} {'% run':>7} "
                 f"{'calls':>10}"]
        for c in self.components:
            share = (100.0 * c.self_time / self.total_time
                     if self.total_time > 0 else 0.0)
            lines.append(f"{c.component:<20} {c.self_time:>8.3f} "
                         f"{share:>6.1f}% {c.calls:>10}")
        if self.top_functions:
            lines.append(f"hottest functions (top {top}):")
            for name, self_time, calls in self.top_functions[:top]:
                lines.append(f"  {self_time:>8.3f}s {calls:>9} calls  "
                             f"{name}")
        if self.metrics:
            lines.append("telemetry attribution (traced re-run):")
            for name in sorted(self.metrics):
                digest = self.metrics[name]
                if digest.get("type") == "histogram":
                    lines.append(
                        f"  {name:<36} n={digest.get('count', 0):<7} "
                        f"mean={digest.get('mean', 0.0):.2f}")
                else:
                    lines.append(
                        f"  {name:<36} {digest.get('value', 0.0):.0f}")
        return "\n".join(lines)


def component_for(filename: str) -> str:
    path = filename.replace("\\", "/")
    for fragment, component in COMPONENTS:
        if fragment in path:
            return component
    return "stdlib/other"


def _attribute(stats: pstats.Stats) -> tuple[list[ComponentSlice],
                                             list[tuple[str, float, int]],
                                             float]:
    buckets: dict[str, ComponentSlice] = {}
    functions: list[tuple[str, float, int]] = []
    total = 0.0
    for (filename, lineno, funcname), (cc, nc, tt, ct, callers) in \
            stats.stats.items():  # type: ignore[attr-defined]
        component = component_for(filename)
        bucket = buckets.get(component)
        if bucket is None:
            bucket = buckets[component] = ComponentSlice(component, 0.0, 0)
        bucket.self_time += tt
        bucket.calls += nc
        total += tt
        short = filename.replace("\\", "/").rpartition("repro/")[2] \
            or filename
        functions.append((f"{short}:{lineno}({funcname})", tt, nc))
    components = sorted(buckets.values(), key=lambda c: -c.self_time)
    functions.sort(key=lambda f: -f[1])
    return components, functions, total


def _traced_metrics(benchmark: Benchmark) -> dict[str, Any]:
    if benchmark.group != "simulate":
        return {}
    from repro.facade import simulate

    result = simulate(**dict(benchmark.sim_kwargs, trace=True))
    if result.telemetry is None:
        return {}
    return result.telemetry.metrics.to_dict()


def profile_benchmark(benchmark: Benchmark, top: int = 20,
                      with_metrics: bool = True) -> ProfileReport:
    """Profile one benchmark execution and attribute it per component."""
    profiler = cProfile.Profile()
    profiler.enable()
    try:
        benchmark.run()
    finally:
        profiler.disable()
    stats = pstats.Stats(profiler)
    components, functions, total = _attribute(stats)
    return ProfileReport(
        benchmark=benchmark.name,
        total_time=total,
        components=components,
        top_functions=functions[:top],
        metrics=_traced_metrics(benchmark) if with_metrics else {},
    )


def profile_by_name(name: str, suite: str = "quick", top: int = 20,
                    with_metrics: bool = True) -> ProfileReport:
    """Profile the named benchmark from a suite."""
    for benchmark in suite_benchmarks(suite):
        if benchmark.name == name:
            return profile_benchmark(benchmark, top=top,
                                     with_metrics=with_metrics)
    known = [b.name for b in suite_benchmarks(suite)]
    raise ValueError(f"no benchmark {name!r} in suite {suite!r}; "
                     f"known: {known}")
