"""Diffing BENCH artifacts: the perf-trajectory regression gate.

``compare_reports`` matches two artifacts benchmark-by-benchmark and
flags, per benchmark:

* **regression** — wall-clock grew beyond the noise threshold (default
  25 %, generous because 1-CPU CI containers are noisy);
* **improvement** — wall-clock shrank beyond the same threshold;
* **model drift** — simulated cycle or instruction counts changed at
  all. Timing noise can never cause this (the suite pins every seed), so
  drift means the *model output* moved, which a perf PR must own up to
  explicitly — it fails the gate regardless of the timing threshold.

``gate`` mode exits nonzero on regressions/drift; warn-only mode reports
but passes, for repos that don't yet have two trustworthy trajectory
points.

The base of a comparison may also be a *directory* of committed
``BENCH_*.json`` artifacts: :func:`resolve_base` picks the strongest
trajectory point (highest aggregate instrs/s), so the CI gate always
measures against the best the repo has ever recorded on comparable
hardware rather than an arbitrary ancestor.
"""

from __future__ import annotations

import pathlib
from dataclasses import dataclass, field
from typing import Any

from repro.bench.harness import BenchReport, load_report

DEFAULT_THRESHOLD = 0.25


def aggregate_instrs_per_sec(report: BenchReport) -> float:
    """Suite-level throughput: total retired instructions per second of
    measured wall-clock — the headline number a perf PR moves."""
    wall = sum(r.wall_clock for r in report.results)
    instrs = sum(r.instructions for r in report.results)
    return instrs / wall if wall > 0 else 0.0


def best_artifact(directory: str | pathlib.Path) -> pathlib.Path:
    """The committed ``BENCH_*.json`` with the highest aggregate
    instrs/s — the strongest trajectory point to gate against."""
    directory = pathlib.Path(directory)
    candidates = sorted(directory.glob("BENCH_*.json"))
    if not candidates:
        raise FileNotFoundError(
            f"no BENCH_*.json artifacts in {directory}")
    return max(candidates,
               key=lambda p: aggregate_instrs_per_sec(load_report(p)))


def resolve_base(path: str | pathlib.Path) -> pathlib.Path:
    """Accept either one artifact or a directory of them (best wins)."""
    path = pathlib.Path(path)
    if path.is_dir():
        return best_artifact(path)
    return path


@dataclass
class BenchDelta:
    """One benchmark's base-vs-new comparison."""

    name: str
    base_wall: float
    new_wall: float
    regressed: bool
    improved: bool
    model_drift: bool

    @property
    def ratio(self) -> float:
        return self.new_wall / self.base_wall if self.base_wall > 0 \
            else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "base_wall": self.base_wall,
            "new_wall": self.new_wall,
            "ratio": self.ratio,
            "regressed": self.regressed,
            "improved": self.improved,
            "model_drift": self.model_drift,
        }


@dataclass
class CompareReport:
    """Everything a trajectory diff found."""

    threshold: float
    deltas: list[BenchDelta] = field(default_factory=list)
    only_in_base: list[str] = field(default_factory=list)
    only_in_new: list[str] = field(default_factory=list)

    @property
    def regressions(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.regressed]

    @property
    def improvements(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.improved]

    @property
    def drifted(self) -> list[BenchDelta]:
        return [d for d in self.deltas if d.model_drift]

    @property
    def ok(self) -> bool:
        """Gate verdict: no regressions and no model drift."""
        return not self.regressions and not self.drifted

    def to_dict(self) -> dict[str, Any]:
        return {
            "threshold": self.threshold,
            "ok": self.ok,
            "deltas": [d.to_dict() for d in self.deltas],
            "only_in_base": list(self.only_in_base),
            "only_in_new": list(self.only_in_new),
        }

    def to_text(self) -> str:
        lines = [f"== bench compare (noise threshold "
                 f"{100 * self.threshold:.0f}%) ==",
                 f"{'benchmark':<30} {'base s':>8} {'new s':>8} "
                 f"{'ratio':>6}  verdict"]
        for d in self.deltas:
            verdict = []
            if d.regressed:
                verdict.append("REGRESSION")
            if d.improved:
                verdict.append("improved")
            if d.model_drift:
                verdict.append("MODEL-DRIFT")
            lines.append(f"{d.name:<30} {d.base_wall:>8.3f} "
                         f"{d.new_wall:>8.3f} {d.ratio:>6.2f}  "
                         f"{', '.join(verdict) or 'ok'}")
        for name in self.only_in_base:
            lines.append(f"{name:<30} only in base artifact")
        for name in self.only_in_new:
            lines.append(f"{name:<30} only in new artifact")
        lines.append(
            f"{len(self.regressions)} regressions, "
            f"{len(self.improvements)} improvements, "
            f"{len(self.drifted)} model drifts -> "
            f"{'OK' if self.ok else 'FAIL'}")
        return "\n".join(lines)


def compare_reports(base: BenchReport, new: BenchReport,
                    threshold: float = DEFAULT_THRESHOLD) -> CompareReport:
    """Diff two BENCH reports by benchmark name."""
    report = CompareReport(threshold=threshold)
    new_by_name = {r.name: r for r in new.results}
    seen = set()
    for base_result in base.results:
        new_result = new_by_name.get(base_result.name)
        if new_result is None:
            report.only_in_base.append(base_result.name)
            continue
        seen.add(base_result.name)
        base_wall = base_result.wall_clock
        new_wall = new_result.wall_clock
        report.deltas.append(BenchDelta(
            name=base_result.name,
            base_wall=base_wall,
            new_wall=new_wall,
            regressed=new_wall > base_wall * (1.0 + threshold),
            improved=new_wall < base_wall * (1.0 - threshold),
            model_drift=(
                base_result.cycles != new_result.cycles
                or base_result.instructions != new_result.instructions
                or not new_result.deterministic),
        ))
    report.only_in_new = [r.name for r in new.results
                          if r.name not in seen
                          and r.name not in report.only_in_base]
    return report
