"""The deterministic benchmark harness and the BENCH artifact format.

A measurement is min-of-N wall-clock around one benchmark execution after
an uncounted warmup pass (first runs pay import, allocator, and branch
warmup costs that say nothing about the simulator). Simulated cycle and
instruction counts must be bit-identical across repetitions — the suite
pins every seed — so the harness also doubles as a determinism check:
a drifting count is reported on the result and fails the bench gate.

Artifacts are schema-versioned JSON written as
``BENCH_<yyyymmdd>_<shortsha>.json`` so a repo accumulates a perf
trajectory that ``repro.bench.compare`` can diff and gate on.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import time
from dataclasses import dataclass, field
from typing import Any, Callable

from repro.bench.fingerprint import EnvFingerprint, collect_fingerprint
from repro.bench.suite import Benchmark, suite_benchmarks

BENCH_SCHEMA = 1

DEFAULT_REPETITIONS = 3
DEFAULT_WARMUP = 1


@dataclass
class BenchResult:
    """One benchmark's measurement: timings plus simulated volume."""

    name: str
    group: str
    description: str
    wall_clocks: list[float]      # one per counted repetition, in order
    cycles: float                 # simulated cycles of one execution
    instructions: int             # retired instructions of one execution
    deterministic: bool           # counts identical across repetitions

    @property
    def wall_clock(self) -> float:
        """Min-of-N: the least-noisy estimate of the true cost."""
        return min(self.wall_clocks)

    @property
    def cycles_per_sec(self) -> float:
        wall = self.wall_clock
        return self.cycles / wall if wall > 0 else 0.0

    @property
    def instrs_per_sec(self) -> float:
        wall = self.wall_clock
        return self.instructions / wall if wall > 0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "name": self.name,
            "group": self.group,
            "description": self.description,
            "wall_clock": self.wall_clock,
            "wall_clocks": list(self.wall_clocks),
            "cycles": self.cycles,
            "instructions": self.instructions,
            "cycles_per_sec": self.cycles_per_sec,
            "instrs_per_sec": self.instrs_per_sec,
            "deterministic": self.deterministic,
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchResult":
        return cls(
            name=data["name"], group=data["group"],
            description=data.get("description", ""),
            wall_clocks=list(data["wall_clocks"]),
            cycles=data["cycles"], instructions=data["instructions"],
            deterministic=data["deterministic"],
        )


@dataclass
class BenchReport:
    """A full suite run: fingerprint + per-benchmark results."""

    suite: str
    repetitions: int
    warmup: int
    fingerprint: EnvFingerprint
    results: list[BenchResult] = field(default_factory=list)
    created: str = ""              # ISO-8601 UTC timestamp
    schema: int = BENCH_SCHEMA

    @property
    def deterministic(self) -> bool:
        return all(r.deterministic for r in self.results)

    def result(self, name: str) -> BenchResult:
        for result in self.results:
            if result.name == name:
                return result
        raise KeyError(f"no benchmark {name!r} in this report")

    def to_dict(self) -> dict[str, Any]:
        return {
            "schema": self.schema,
            "kind": "repro-bench",
            "created": self.created,
            "suite": self.suite,
            "repetitions": self.repetitions,
            "warmup": self.warmup,
            "fingerprint": self.fingerprint.to_dict(),
            "benchmarks": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "BenchReport":
        schema = data.get("schema")
        if schema != BENCH_SCHEMA:
            raise ValueError(
                f"unsupported BENCH artifact: schema {schema!r}, "
                f"expected {BENCH_SCHEMA}")
        return cls(
            suite=data["suite"],
            repetitions=data["repetitions"],
            warmup=data["warmup"],
            fingerprint=EnvFingerprint.from_dict(data["fingerprint"]),
            results=[BenchResult.from_dict(b)
                     for b in data["benchmarks"]],
            created=data.get("created", ""),
            schema=schema,
        )

    def write(self, path: str | pathlib.Path) -> pathlib.Path:
        path = pathlib.Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump(self.to_dict(), handle, indent=2, allow_nan=False)
            handle.write("\n")
        return path

    def artifact_name(self) -> str:
        return artifact_name(self.created, self.fingerprint.short_sha)

    def to_text(self) -> str:
        """Human-readable suite table."""
        lines = [
            f"== bench suite {self.suite!r}: {len(self.results)} "
            f"benchmarks, min of {self.repetitions} "
            f"(+{self.warmup} warmup) ==",
            f"   host: python {self.fingerprint.python} on "
            f"{self.fingerprint.platform} "
            f"({self.fingerprint.cpu_count} cpus), sources "
            f"{self.fingerprint.source_hash}",
            f"{'benchmark':<30} {'wall s':>8} {'cycles/s':>12} "
            f"{'instrs/s':>12} {'det':>4}",
        ]
        for r in self.results:
            lines.append(
                f"{r.name:<30} {r.wall_clock:>8.3f} "
                f"{r.cycles_per_sec:>12.0f} {r.instrs_per_sec:>12.0f} "
                f"{'ok' if r.deterministic else 'DRIFT':>5}")
        total = sum(r.wall_clock for r in self.results)
        lines.append(f"total measured wall-clock: {total:.2f}s"
                     + ("" if self.deterministic
                        else "  [NON-DETERMINISTIC COUNTS]"))
        return "\n".join(lines)


def artifact_name(created: str, short_sha: str) -> str:
    """``BENCH_<yyyymmdd>_<shortsha>.json`` from an ISO timestamp."""
    stamp = created[:10].replace("-", "") or "unknown"
    return f"BENCH_{stamp}_{short_sha}.json"


def load_report(path: str | pathlib.Path) -> BenchReport:
    with pathlib.Path(path).open("r", encoding="utf-8") as handle:
        return BenchReport.from_dict(json.load(handle))


ProgressFn = Callable[[str, int, int], None]


def run_benchmark(benchmark: Benchmark,
                  repetitions: int = DEFAULT_REPETITIONS,
                  warmup: int = DEFAULT_WARMUP) -> BenchResult:
    """Measure one benchmark: warmup passes, then min-of-N timing."""
    if repetitions < 1:
        raise ValueError("repetitions must be >= 1")
    for _ in range(max(0, warmup)):
        benchmark.run()
    wall_clocks: list[float] = []
    volumes: list[tuple[float, int]] = []
    for _ in range(repetitions):
        start = time.perf_counter()
        volume = benchmark.run()
        wall_clocks.append(time.perf_counter() - start)
        volumes.append(volume)
    cycles, instructions = volumes[0]
    return BenchResult(
        name=benchmark.name, group=benchmark.group,
        description=benchmark.description, wall_clocks=wall_clocks,
        cycles=cycles, instructions=instructions,
        deterministic=all(v == volumes[0] for v in volumes),
    )


def run_suite(suite: str = "quick",
              repetitions: int = DEFAULT_REPETITIONS,
              warmup: int = DEFAULT_WARMUP,
              progress: ProgressFn | None = None) -> BenchReport:
    """Measure every benchmark in a suite; the report is ready to write.
    """
    benchmarks = suite_benchmarks(suite)
    report = BenchReport(
        suite=suite, repetitions=repetitions, warmup=warmup,
        fingerprint=collect_fingerprint(),
        created=datetime.datetime.now(datetime.timezone.utc)
        .strftime("%Y-%m-%dT%H:%M:%SZ"),
    )
    for index, benchmark in enumerate(benchmarks):
        if progress is not None:
            progress(benchmark.name, index, len(benchmarks))
        report.results.append(
            run_benchmark(benchmark, repetitions=repetitions,
                          warmup=warmup))
    return report
