"""``python -m repro.bench`` — the simulator performance observatory CLI.

Usage::

    python -m repro.bench run [--suite quick|full|smoke] [--reps N]
        [--warmup N] [--out PATH | --no-artifact] [--json]
    python -m repro.bench profile sim:ooo:ppa:gcc [--suite quick]
        [--top N] [--no-metrics] [--json]
    python -m repro.bench compare BASE.json NEW.json [--threshold F]
        [--json]
    python -m repro.bench gate BASE.json NEW.json [--threshold F]
        [--warn-only]

``compare``/``gate`` also accept a *directory* as BASE (e.g. the repo
root): the committed ``BENCH_*.json`` with the best aggregate instrs/s
becomes the base, so the gate measures against the strongest recorded
trajectory point.
    python -m repro.bench fidelity [--tier quick|full] [--json]
        [--markdown]

``run`` writes a schema-versioned ``BENCH_<date>_<shortsha>.json`` in the
current directory (the repo root, in CI) to extend the perf trajectory;
``compare``/``gate`` diff two trajectory points; ``fidelity`` scores the
reproduction against the paper claims in EXPERIMENTS.md.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from repro.cli import add_json_flag
from repro.bench.compare import (
    DEFAULT_THRESHOLD,
    aggregate_instrs_per_sec,
    compare_reports,
    resolve_base,
)
from repro.bench.fidelity import run_fidelity
from repro.bench.harness import (
    DEFAULT_REPETITIONS,
    DEFAULT_WARMUP,
    load_report,
    run_suite,
)
from repro.bench.profile import profile_by_name
from repro.bench.suite import SUITES


def _progress(name: str, index: int, total: int) -> None:
    print(f"  [{index + 1:2d}/{total}] {name}", flush=True,
          file=sys.stderr)


def _cmd_run(args) -> int:
    report = run_suite(suite=args.suite, repetitions=args.reps,
                       warmup=args.warmup,
                       progress=None if args.json else _progress)
    path = None
    if not args.no_artifact:
        path = pathlib.Path(args.out) if args.out \
            else pathlib.Path.cwd() / report.artifact_name()
        report.write(path)
    if args.json:
        out = report.to_dict()
        out["artifact"] = str(path) if path else None
        print(json.dumps(out, indent=2, allow_nan=False))
    else:
        print(report.to_text())
        if path:
            print(f"[artifact] {path}")
    return 0 if report.deterministic else 1


def _cmd_profile(args) -> int:
    report = profile_by_name(args.benchmark, suite=args.suite,
                             top=args.top,
                             with_metrics=not args.no_metrics)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, allow_nan=False))
    else:
        print(report.to_text(top=args.top))
    return 0


def _compare(args):
    base_path = resolve_base(args.base)
    base = load_report(base_path)
    new = load_report(args.new)
    report = compare_reports(base, new, threshold=args.threshold)
    aggregate = (f"aggregate instrs/s: base "
                 f"{aggregate_instrs_per_sec(base):,.0f} "
                 f"({base_path}) -> new "
                 f"{aggregate_instrs_per_sec(new):,.0f}")
    return report, aggregate


def _cmd_compare(args) -> int:
    report, aggregate = _compare(args)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, allow_nan=False))
    else:
        print(report.to_text())
        print(aggregate)
    return 0


def _cmd_gate(args) -> int:
    report, aggregate = _compare(args)
    print(report.to_text())
    print(aggregate)
    if report.ok:
        return 0
    if args.warn_only:
        print("[gate] FAIL downgraded to warning (--warn-only)")
        return 0
    return 1


def _cmd_fidelity(args) -> int:
    report = run_fidelity(tier=args.tier,
                          progress=None if args.json else _progress)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2, allow_nan=False))
    elif args.markdown:
        print(report.to_markdown())
    else:
        print(report.to_text())
    return 0 if report.ok else 1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench",
        description="Benchmark, profile, and fidelity-check the "
                    "simulator itself.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="measure a benchmark suite and "
                                     "write a BENCH_*.json artifact")
    run.add_argument("--suite", default="quick", choices=sorted(SUITES))
    run.add_argument("--reps", type=int, default=DEFAULT_REPETITIONS,
                     help="counted repetitions per benchmark "
                          f"(default: {DEFAULT_REPETITIONS}, min-of-N)")
    run.add_argument("--warmup", type=int, default=DEFAULT_WARMUP,
                     help="uncounted warmup passes per benchmark "
                          f"(default: {DEFAULT_WARMUP})")
    run.add_argument("--out", default=None, metavar="PATH",
                     help="artifact path (default: "
                          "./BENCH_<date>_<shortsha>.json)")
    run.add_argument("--no-artifact", action="store_true",
                     help="measure and print, but write nothing")
    add_json_flag(run)
    run.set_defaults(func=_cmd_run)

    prof = sub.add_parser("profile", help="cProfile one benchmark with "
                                          "per-component attribution")
    prof.add_argument("benchmark",
                      help="benchmark name (see `run`), e.g. "
                           "sim:ooo:ppa:gcc")
    prof.add_argument("--suite", default="quick", choices=sorted(SUITES))
    prof.add_argument("--top", type=int, default=10,
                      help="hottest functions to list (default: 10)")
    prof.add_argument("--no-metrics", action="store_true",
                      help="skip the traced re-run (telemetry metric "
                           "attribution)")
    add_json_flag(prof)
    prof.set_defaults(func=_cmd_profile)

    comp = sub.add_parser("compare", help="diff two BENCH artifacts")
    comp.add_argument("base",
                      help="base artifact, or a directory of BENCH_*.json "
                           "(the best aggregate-throughput point wins)")
    comp.add_argument("new")
    comp.add_argument("--threshold", type=float,
                      default=DEFAULT_THRESHOLD,
                      help="relative wall-clock noise threshold "
                           f"(default: {DEFAULT_THRESHOLD})")
    add_json_flag(comp)
    comp.set_defaults(func=_cmd_compare)

    gate = sub.add_parser("gate", help="compare and exit nonzero on "
                                       "regressions or model drift")
    gate.add_argument("base",
                      help="base artifact, or a directory of BENCH_*.json "
                           "(the best aggregate-throughput point wins)")
    gate.add_argument("new")
    gate.add_argument("--threshold", type=float,
                      default=DEFAULT_THRESHOLD)
    gate.add_argument("--warn-only", action="store_true",
                      help="report failures but exit 0 (bootstrap mode "
                           "until two trajectory points exist)")
    gate.set_defaults(func=_cmd_gate)

    fid = sub.add_parser("fidelity", help="score the reproduction "
                                          "against the paper's claims")
    fid.add_argument("--tier", default="quick", choices=("quick", "full"))
    add_json_flag(fid)
    fid.add_argument("--markdown", action="store_true",
                     help="render the scoreboard as a markdown table")
    fid.set_defaults(func=_cmd_fidelity)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
