"""Ablations of the design choices DESIGN.md calls out.

These are not paper figures; they isolate the contribution of individual
PPA mechanisms:

* asynchronous writeback vs. draining synchronously at every store commit
  (Section 3.2's motivation);
* persist coalescing on vs. off (Section 4.3);
* eager vs. patient region boundaries (how many masked registers must be
  stranded before a rename stall escalates to a persist barrier);
* store integrity on vs. off — with masking disabled, post-failure replay
  reads whatever later value overwrote the store's physical register, and
  recovery corrupts memory (the negative result motivating the paper).
"""

from __future__ import annotations

from dataclasses import replace

from repro.analysis.stats import gmean
from repro.config import skylake_default
from repro.core.processor import PersistentProcessor
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.experiments.runner import _slowdown as slowdown
from repro.failure.consistency import verify_recovery
from repro.workloads.profiles import profile_by_name
from repro.workloads.synthetic import generate_trace

ABLATION_APPS = ("gcc", "rb", "water-ns", "lbm")
ABLATION_LENGTH = 10_000


def _gmean_overhead(config, apps, length) -> float:
    return gmean([
        slowdown(name, "ppa", config=config, baseline_config=None,
                 length=length)
        for name in apps
    ])


def run_ablation_async(apps=ABLATION_APPS,
                       length: int = ABLATION_LENGTH) -> ExperimentResult:
    base = skylake_default()
    sync_cfg = replace(base, ppa=replace(base.ppa, async_writeback=False))
    rows = [
        ["async (PPA)", _gmean_overhead(base, apps, length)],
        ["synchronous", _gmean_overhead(sync_cfg, apps, length)],
    ]
    return ExperimentResult(
        experiment_id="ablation-async",
        title="Asynchronous vs synchronous store persistence",
        columns=["mode", "gmean_slowdown"], rows=rows,
        notes="synchronous draining at each store commit forfeits the "
              "overlap that makes PPA cheap",
    )


def run_ablation_coalescing(apps=ABLATION_APPS,
                            length: int = ABLATION_LENGTH
                            ) -> ExperimentResult:
    base = skylake_default()
    no_coalesce = replace(base, ppa=replace(base.ppa,
                                            persist_coalescing=False))
    rows = [
        ["coalescing (PPA)", _gmean_overhead(base, apps, length)],
        ["no coalescing", _gmean_overhead(no_coalesce, apps, length)],
    ]
    return ExperimentResult(
        experiment_id="ablation-coalescing",
        title="Persist coalescing on vs off",
        columns=["mode", "gmean_slowdown"], rows=rows,
        notes="without coalescing every store is one NVM line write and "
              "the 2.3 GB/s write port saturates",
    )


def run_ablation_boundary(apps=ABLATION_APPS,
                          length: int = ABLATION_LENGTH) -> ExperimentResult:
    base = skylake_default()
    rows = []
    for threshold in (0, 8, 24, 64):
        config = replace(base, ppa=replace(
            base.ppa, min_deferred_for_boundary=threshold))
        rows.append([threshold, _gmean_overhead(config, apps, length)])
    return ExperimentResult(
        experiment_id="ablation-boundary",
        title="Rename-stall escalation threshold (deferred registers)",
        columns=["min_deferred", "gmean_slowdown"], rows=rows,
        notes="0 = every rename stall becomes a persist barrier (eager); "
              "larger values ride out transient in-flight spikes",
    )


def run_ablation_integrity(app: str = "gcc", length: int = 4_000,
                           failure_points: int = 25) -> ExperimentResult:
    """Disable MaskReg and count corrupted recoveries."""
    rows = []
    for enforce in (True, False):
        processor = PersistentProcessor(
            enforce_store_integrity=enforce)
        trace = generate_trace(profile_by_name(app), length=length)
        stats = processor._run(trace)
        corrupted = 0
        for index in range(1, failure_points + 1):
            fail_time = stats.cycles * index / (failure_points + 1)
            crash = processor.crash_at(fail_time)
            try:
                result = processor.recover(crash)
            except KeyError:
                corrupted += 1
                continue
            report = verify_recovery(stats, result.nvm_image,
                                     crash.last_committed_seq)
            if not report.consistent:
                corrupted += 1
        rows.append(["masking on" if enforce else "masking off",
                     corrupted, failure_points])
    return ExperimentResult(
        experiment_id="ablation-integrity",
        title="Store integrity on vs off: corrupted recoveries",
        columns=["mode", "corrupted", "failure_points"], rows=rows,
        notes="with MaskReg disabled, replayed stores read reclaimed "
              "registers and recovery diverges from the reference",
    )


for _experiment in (
    Experiment("ablation-async", "Async writeback ablation",
               "sync draining is much slower", run_ablation_async),
    Experiment("ablation-coalescing", "Persist coalescing ablation",
               "uncoalesced writes saturate NVM", run_ablation_coalescing),
    Experiment("ablation-boundary", "Boundary threshold ablation",
               "eager barriers pay ROB drains", run_ablation_boundary),
    Experiment("ablation-integrity", "Store integrity ablation",
               "masking off corrupts recovery", run_ablation_integrity),
):
    register(_experiment)
