"""The persistency-litmus conformance experiment.

Not a figure from the paper: the paper's Section 2 correctness argument,
turned executable. The Px86-TSO enumerator (:mod:`repro.litmus.px86`)
computes the exact formally-allowed crash-state set of each curated
litmus program, and the conformance harness sweeps every simulator
target over every crash instant, proving the simulator admits *only*
allowed states (soundness) and reporting how many it actually reaches
(completeness). The fidelity scoreboard pins soundness at zero
violations permanently, so persistence-model changes cannot silently
start leaking forbidden crash states.
"""

from __future__ import annotations

from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register


def run_litmus(programs=None, cores=None, schemes=None,
               max_interleavings: int = 24) -> ExperimentResult:
    from repro.litmus.families import curated_suite, program_by_name
    from repro.litmus.harness import run_suite, target_matrix

    if programs is None:
        suite = curated_suite()
    else:
        suite = tuple(program_by_name(name) for name in programs)
    targets = target_matrix(cores, schemes)
    report = run_suite(suite, targets,
                       max_interleavings=max_interleavings)

    rows = []
    for program in suite:
        mine = [r for r in report.results
                if r.program == program.name and not r.skipped]
        coverages = [r.coverage for r in mine]
        rows.append([
            program.name,
            len(mine),
            sum(len(r.violations) for r in mine),
            min(coverages) if coverages else 0.0,
            sum(coverages) / len(coverages) if coverages else 0.0,
        ])
    return ExperimentResult(
        experiment_id="litmus",
        title="Px86-TSO persistency litmus conformance",
        columns=["program", "checks", "violations", "min_cov", "mean_cov"],
        rows=rows,
        summary={
            "checked": float(report.checked),
            "soundness_violations": float(report.soundness_violations),
            "min_coverage": report.min_coverage,
            "mean_coverage": report.mean_coverage,
        },
        notes="observed crash states ⊆ formally allowed on every "
              "(program, core, scheme) target; software-logging "
              "comparators are held to the relaxed (fence- and "
              "line-blind) reference they actually implement",
    )


register(Experiment(
    experiment_id="litmus",
    title="Px86-TSO persistency litmus conformance",
    paper_claim="Section 2/6: PPA's crash states are exactly the "
                "persistency-model-allowed ones (recovery reproduces "
                "the committed prefix)",
    run=run_litmus,
))
