"""Extension experiments beyond the paper's evaluation section.

* ``ext-psp`` — the full persistence landscape on one chart: PPA against
  the *ideal* PSP bound of Figure 10 (eADR/BBB) **and** against software
  PSP (undo/redo logging transactions, Section 2.2's argument).
* ``ext-region-length`` — sweep the compiler-formed region length of a
  Capri-style scheme from ReplayCache's 12 toward PPA's dynamic lengths:
  region length is the first-order determinant of WSP cost, which is the
  paper's central quantitative claim.
"""

from __future__ import annotations

from repro.analysis.stats import gmean
from repro.config import skylake_default
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.experiments.runner import _run_app as run_app
from repro.memory.hierarchy import MemorySystem
from repro.persistence.capri import CapriPolicy
from repro.pipeline.core import OoOCore
from repro.workloads.profiles import profile_by_name
from repro.workloads.synthetic import TraceGenerator

PSP_APPS = ("gcc", "mcf", "rb", "lulesh", "tatp")
SWEEP_APPS = ("gcc", "rb", "water-ns")


def run_ext_psp(apps=PSP_APPS, length: int = 8_000) -> ExperimentResult:
    schemes = ("ppa", "eadr", "psp-undolog", "psp-redolog")
    rows = []
    per_scheme: dict[str, list[float]] = {s: [] for s in schemes}
    for app in apps:
        base = run_app(app, "baseline", length=length)
        row = [app]
        for scheme in schemes:
            ratio = run_app(app, scheme, length=length).cycles / base.cycles
            per_scheme[scheme].append(ratio)
            row.append(ratio)
        rows.append(row)
    summary = {f"gmean_{s}": gmean(per_scheme[s]) for s in schemes}
    return ExperimentResult(
        experiment_id="ext-psp",
        title="PPA vs ideal PSP vs software PSP (undo/redo logging)",
        columns=["app", "ppa", "eadr (ideal)", "undo-log", "redo-log"],
        rows=rows,
        summary=summary,
        notes="Section 2.2: software persistence barriers make PSP far "
              "slower than even the ideal eADR bound; PPA keeps the DRAM "
              "cache and pays low single digits",
    )


def run_ext_region_length(apps=SWEEP_APPS, length: int = 8_000,
                          region_lengths=(12, 29, 60, 120, 300)
                          ) -> ExperimentResult:
    """Capri-style scheme with increasingly long compiler regions."""
    config = skylake_default()
    rows = []
    summary = {}
    for mean_length in region_lengths:
        ratios = []
        for app in apps:
            base = run_app(app, "baseline", length=length)
            profile = profile_by_name(app)
            generator = TraceGenerator(profile, seed=0)
            memory = MemorySystem(config.memory)
            from repro.experiments.runner import _declare_steady_state
            _declare_steady_state(memory, generator)
            memory.prewarm_extents(generator.region_extents())
            trace = generator.generate(length)
            core = OoOCore(config,
                           CapriPolicy(mean_region_length=mean_length),
                           memory=memory, track_values=False)
            stats = core._run(trace)
            ratios.append(stats.cycles / base.cycles)
        mean = gmean(ratios)
        rows.append([mean_length, mean])
        summary[f"gmean_len{mean_length}"] = mean
    return ExperimentResult(
        experiment_id="ext-region-length",
        title="Compiler-region length vs WSP overhead (Capri-style)",
        columns=["mean_region_length", "gmean_slowdown"],
        rows=rows,
        summary=summary,
        notes="longer regions amortize the per-boundary seal; PPA's "
              "dynamic regions (hundreds of instructions) sit past the "
              "knee — the paper's 11x-shorter-regions explanation for "
              "Capri's 26%",
    )


def run_ext_sbgate(apps=SWEEP_APPS, length: int = 8_000
                   ) -> ExperimentResult:
    """Section 6's rejected alternative: gate stores in the store buffer
    until durable instead of preserving their registers."""
    rows = []
    gate_ratios, ppa_ratios = [], []
    for app in apps:
        base = run_app(app, "baseline", length=length)
        gate = run_app(app, "sb-gate", length=length)
        ppa = run_app(app, "ppa", length=length)
        rows.append([app, ppa.cycles / base.cycles,
                     gate.cycles / base.cycles])
        ppa_ratios.append(ppa.cycles / base.cycles)
        gate_ratios.append(gate.cycles / base.cycles)
    return ExperimentResult(
        experiment_id="ext-sbgate",
        title="Store-buffer gating vs PPA's register preservation",
        columns=["app", "ppa", "sb-gate"],
        rows=rows,
        summary={"gmean_ppa": gmean(ppa_ratios),
                 "gmean_sbgate": gmean(gate_ratios)},
        notes="Section 6: the SB is small and CAM-expensive; holding "
              "retired stores there until durability throttles the "
              "pipeline — PPA's PRF-based preservation avoids it",
    )


def run_ext_inorder(apps=("gcc", "rb", "xsbench"),
                    length: int = 6_000) -> ExperimentResult:
    """Section 6's in-order extension: value-CSQ persistence overhead on a
    simple in-order core (no MaskReg, values ride in the CSQ)."""
    from repro.inorder.core import InOrderCore

    config = skylake_default()
    rows = []
    ratios = []
    for app in apps:
        profile = profile_by_name(app)

        def run(persistent: bool) -> float:
            generator = TraceGenerator(profile, seed=0)
            memory = MemorySystem(config.memory)
            from repro.experiments.runner import _declare_steady_state
            _declare_steady_state(memory, generator)
            memory.prewarm_extents(generator.region_extents())
            trace = generator.generate(length)
            core = InOrderCore(config, memory=memory,
                               persistent=persistent)
            return core._run(trace).cycles

        ratio = run(True) / run(False)
        rows.append([app, ratio])
        ratios.append(ratio)
    return ExperimentResult(
        experiment_id="ext-inorder",
        title="Value-CSQ persistence on an in-order core",
        columns=["app", "slowdown"],
        rows=rows,
        summary={"gmean": gmean(ratios)},
        notes="Section 6: the design extends to in-order cores by storing "
              "data values in the CSQ (wider entries, no MaskReg); the "
              "overhead stays small because the same asynchronous "
              "persistence applies",
    )


for _experiment in (
    Experiment("ext-inorder", "In-order value-CSQ extension",
               "small overhead on in-order cores", run_ext_inorder),
    Experiment("ext-psp", "Software vs ideal PSP vs PPA",
               "software PSP is far slower than the ideal bound",
               run_ext_psp),
    Experiment("ext-region-length", "Region-length sweep",
               "overhead falls as compiler regions lengthen",
               run_ext_region_length),
    Experiment("ext-sbgate", "Store-buffer gating alternative",
               "gating stores in the SB is far costlier than PPA",
               run_ext_sbgate),
):
    register(_experiment)
