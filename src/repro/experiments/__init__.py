"""Experiment harness: one module per paper figure/table, plus the runner."""

from repro.experiments.runner import (
    clear_cache,
    run_app,
    run_multithreaded,
    slowdown,
)
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import all_experiments, get_experiment

__all__ = [
    "Experiment",
    "ExperimentResult",
    "all_experiments",
    "clear_cache",
    "get_experiment",
    "run_app",
    "run_multithreaded",
    "slowdown",
]
