"""Runnable reproductions of every evaluation figure in the paper.

Each ``run_figN`` returns an :class:`ExperimentResult` whose rows mirror the
figure's bars/series. The paper plots normalized slowdowns against the
baseline (original binaries on PMEM's memory mode); so do we.

Per-application figures run each application on one core of the Table 2
system (the paper runs the multithreaded suites under 8-core full-system
gem5; our multicore model is exercised separately in Figure 19 — see
DESIGN.md for the approximation inventory).
"""

from __future__ import annotations

from repro.analysis.cdf import fraction_with_at_least, merge_hists
from repro.analysis.stats import gmean
from repro.config import skylake_default
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.experiments.runner import (
    _run_app as run_app,
    _run_multithreaded as run_multithreaded,
    _slowdown as slowdown,
)
from repro.workloads.profiles import (
    ALL_PROFILES,
    memory_intensive_profiles,
    profile_by_name,
)

FULL_LENGTH = 20_000
SWEEP_LENGTH = 12_000

# The paper's Figures 15/18 sweep "memory-intensive CPU2006/Mini-apps,
# SPLASH3, and WHISPER"; this is our equivalent subset.
SWEEP_APPS = ("mcf", "lbm", "libquantum", "rb", "pc", "water-ns",
              "lulesh", "xsbench")

MULTITHREADED_APPS = ("water-ns", "rb", "barnes")


def _app_names(apps) -> list[str]:
    if apps is None:
        return [p.name for p in ALL_PROFILES]
    return list(apps)


def _per_app_slowdowns(scheme: str, apps=None, config=None,
                       baseline_config=None,
                       length: int = FULL_LENGTH) -> dict[str, float]:
    return {
        name: slowdown(name, scheme, config=config,
                       baseline_config=baseline_config, length=length)
        for name in _app_names(apps)
    }


# ---------------------------------------------------------------------------
# Figure 1 — ReplayCache's slowdown on a server-class core
# ---------------------------------------------------------------------------

def run_fig1(apps=None, length: int = FULL_LENGTH) -> ExperimentResult:
    ratios = _per_app_slowdowns("replaycache", apps, length=length)
    rows = [[name, ratio] for name, ratio in ratios.items()]
    return ExperimentResult(
        experiment_id="fig1",
        title="ReplayCache slowdown vs PMEM memory mode",
        columns=["app", "slowdown"],
        rows=rows,
        summary={"gmean_slowdown": gmean(ratios.values())},
        notes="paper: ~5x average slowdown",
    )


# ---------------------------------------------------------------------------
# Figure 5 — CDF of free physical registers
# ---------------------------------------------------------------------------

def run_fig5(apps=None, length: int = FULL_LENGTH) -> ExperimentResult:
    suites: dict[str, list] = {}
    for name in _app_names(apps):
        profile = profile_by_name(name)
        stats = run_app(profile, "baseline", length=length)
        suites.setdefault(profile.suite, []).append(stats)
    rows = []
    summary = {}
    for suite, stats_list in sorted(suites.items()):
        int_hist = merge_hists(s.free_reg_hist_int for s in stats_list)
        fp_hist = merge_hists(s.free_reg_hist_fp for s in stats_list)
        row = [suite]
        for threshold in (60, 100, 138):
            row.append(fraction_with_at_least(int_hist, threshold))
        row.append(fraction_with_at_least(fp_hist, 60))
        row.append(fraction_with_at_least(fp_hist, 110))
        rows.append(row)
        summary[f"{suite}_int_ge_60"] = row[1]
        summary[f"{suite}_int_ge_138"] = row[3]
    return ExperimentResult(
        experiment_id="fig5",
        title="Fraction of cycles with many free physical registers",
        columns=["suite", "int>=60", "int>=100", "int>=138", "fp>=60",
                 "fp>=110"],
        rows=rows,
        summary=summary,
        notes="paper: for CPU2006, 138 int / 110 fp registers are free "
              "for 75% of cycles; our core keeps more definitions in "
              "flight, shifting the CDF left (see EXPERIMENTS.md)",
    )


# ---------------------------------------------------------------------------
# Figure 8 — run-time overhead of PPA and Capri
# ---------------------------------------------------------------------------

def run_fig8(apps=None, length: int = FULL_LENGTH) -> ExperimentResult:
    from repro.analysis.stats import suite_means

    ppa = _per_app_slowdowns("ppa", apps, length=length)
    capri = _per_app_slowdowns("capri", apps, length=length)
    rows = [[name, ppa[name], capri[name]] for name in ppa]
    suites = {name: profile_by_name(name).suite for name in ppa}
    summary = {
        "ppa_gmean": gmean(ppa.values()),
        "capri_gmean": gmean(capri.values()),
    }
    for suite, mean in sorted(suite_means(ppa, suites).items()):
        summary[f"ppa_{suite}"] = mean
    return ExperimentResult(
        experiment_id="fig8",
        title="Normalized slowdown of PPA and Capri vs memory mode",
        columns=["app", "ppa", "capri"],
        rows=rows,
        summary=summary,
        notes="paper: PPA 2% mean overhead, Capri 26%",
    )


# ---------------------------------------------------------------------------
# Figure 9 — PPA and memory mode vs a DRAM-only system
# ---------------------------------------------------------------------------

def run_fig9(apps=None, length: int = FULL_LENGTH) -> ExperimentResult:
    rows = []
    ppa_ratios, base_ratios = [], []
    for name in _app_names(apps):
        dram = run_app(name, "dram-only", length=length)
        base = run_app(name, "baseline", length=length)
        ppa = run_app(name, "ppa", length=length)
        rows.append([name, ppa.cycles / dram.cycles,
                     base.cycles / dram.cycles])
        ppa_ratios.append(ppa.cycles / dram.cycles)
        base_ratios.append(base.cycles / dram.cycles)
    return ExperimentResult(
        experiment_id="fig9",
        title="Slowdown vs 32 GB DRAM-only system",
        columns=["app", "ppa", "memory-mode"],
        rows=rows,
        summary={
            "ppa_gmean": gmean(ppa_ratios),
            "memory_mode_gmean": gmean(base_ratios),
        },
        notes="paper: PPA 16% and memory mode 14% slower than DRAM-only; "
              "lbm/pc worst (44%/58% for memory mode)",
    )


# ---------------------------------------------------------------------------
# Figure 10 — PPA vs ideal PSP (eADR/BBB) on memory-intensive apps
# ---------------------------------------------------------------------------

def run_fig10(apps=None, length: int = FULL_LENGTH) -> ExperimentResult:
    if apps is None:
        apps = [p.name for p in memory_intensive_profiles()]
    rows = []
    ppa_ratios, psp_ratios = [], []
    for name in apps:
        base = run_app(name, "baseline", length=length)
        ppa = run_app(name, "ppa", length=length)
        psp = run_app(name, "eadr", length=length)
        rows.append([name, ppa.cycles / base.cycles,
                     psp.cycles / base.cycles])
        ppa_ratios.append(ppa.cycles / base.cycles)
        psp_ratios.append(psp.cycles / base.cycles)
    return ExperimentResult(
        experiment_id="fig10",
        title="PPA vs ideal PSP (eADR/BBB, app-direct) on memory-"
              "intensive apps",
        columns=["app", "ppa", "eadr/bbb"],
        rows=rows,
        summary={
            "ppa_gmean": gmean(ppa_ratios),
            "psp_gmean": gmean(psp_ratios),
        },
        notes="paper: ideal PSP 1.39x mean / up to 2.4x; PPA 3%",
    )


# ---------------------------------------------------------------------------
# Figure 11 — stall cycles at region end
# ---------------------------------------------------------------------------

def run_fig11(apps=None, length: int = FULL_LENGTH) -> ExperimentResult:
    rows = []
    fractions = []
    for name in _app_names(apps):
        stats = run_app(name, "ppa", length=length)
        frac = stats.region_end_stall_fraction
        rows.append([name, 100.0 * frac])
        fractions.append(frac)
    return ExperimentResult(
        experiment_id="fig11",
        title="Stall cycles at region end (% of execution)",
        columns=["app", "stall_pct"],
        rows=rows,
        summary={"mean_stall_pct": 100.0 * sum(fractions) / len(fractions)},
        notes="paper: 0.21% mean; water-ns 6.1%, water-sp 8.1% worst",
    )


# ---------------------------------------------------------------------------
# Figure 12 — extra rename stalls from PRF pressure
# ---------------------------------------------------------------------------

def run_fig12(apps=None, length: int = FULL_LENGTH) -> ExperimentResult:
    rows = []
    increases = []
    for name in _app_names(apps):
        base = run_app(name, "baseline", length=length)
        ppa = run_app(name, "ppa", length=length)
        base_frac = base.rename_oor_stall_cycles / base.cycles
        ppa_frac = ppa.rename_oor_stall_cycles / ppa.cycles
        increase = max(0.0, ppa_frac - base_frac)
        rows.append([name, 100.0 * increase])
        increases.append(increase)
    return ExperimentResult(
        experiment_id="fig12",
        title="Increase in out-of-register rename stalls (% of cycles)",
        columns=["app", "stall_increase_pct"],
        rows=rows,
        summary={"mean_increase_pct":
                 100.0 * sum(increases) / len(increases)},
        notes="paper: 0.07% mean increase",
    )


# ---------------------------------------------------------------------------
# Figure 13 — region composition (stores vs others)
# ---------------------------------------------------------------------------

def run_fig13(apps=None, length: int = FULL_LENGTH) -> ExperimentResult:
    rows = []
    stores, others = [], []
    for name in _app_names(apps):
        stats = run_app(name, "ppa", length=length)
        rows.append([name, stats.mean_region_others,
                     stats.mean_region_stores])
        stores.append(stats.mean_region_stores)
        others.append(stats.mean_region_others)
    return ExperimentResult(
        experiment_id="fig13",
        title="Average instructions per dynamic region",
        columns=["app", "others", "stores"],
        rows=rows,
        summary={
            "mean_others": sum(others) / len(others),
            "mean_stores": sum(stores) / len(stores),
        },
        notes="paper: 301 others + 18 stores on average; Capri's regions "
              "average 29 instructions",
    )


# ---------------------------------------------------------------------------
# Figure 14 — deeper cache hierarchy (L3 atop the DRAM cache)
# ---------------------------------------------------------------------------

def run_fig14(apps=None, length: int = FULL_LENGTH) -> ExperimentResult:
    config = skylake_default().with_l3()
    ratios = _per_app_slowdowns("ppa", apps, config=config,
                                baseline_config=config, length=length)
    rows = [[name, ratio] for name, ratio in ratios.items()]
    return ExperimentResult(
        experiment_id="fig14",
        title="PPA slowdown with an L3 atop the DRAM cache",
        columns=["app", "slowdown"],
        rows=rows,
        summary={"gmean": gmean(ratios.values())},
        notes="paper: ~1% overhead with the deeper hierarchy",
    )


# ---------------------------------------------------------------------------
# Figures 15-18 — sensitivity sweeps
# ---------------------------------------------------------------------------

def _sweep(experiment_id: str, title: str, notes: str, label: str,
           values, config_of, apps, length: int) -> ExperimentResult:
    apps = list(apps) if apps is not None else list(SWEEP_APPS)
    rows = []
    summary = {}
    for value in values:
        config = config_of(value)
        ratios = [
            slowdown(name, "ppa", config=config, baseline_config=None,
                     length=length)
            for name in apps
        ]
        mean = gmean(ratios)
        rows.append([f"{label}={value}", mean])
        summary[f"gmean_{value}"] = mean
    return ExperimentResult(
        experiment_id=experiment_id, title=title,
        columns=[label, "gmean_slowdown"], rows=rows,
        summary=summary, notes=notes,
    )


def run_fig15(apps=None, length: int = SWEEP_LENGTH) -> ExperimentResult:
    base = skylake_default()
    return _sweep(
        "fig15", "PPA slowdown vs WPQ size",
        "paper: 8-entry WPQ costs ~8%; 16 (default) ~2%",
        "wpq", (8, 16, 24), base.with_wpq, apps, length)


def run_fig16(apps=None, length: int = SWEEP_LENGTH) -> ExperimentResult:
    base = skylake_default()
    sizes = ((80, 80), (100, 100), (120, 120), (140, 140), (180, 168),
             (280, 224))
    apps = list(apps) if apps is not None else list(SWEEP_APPS)
    rows = []
    summary = {}
    for int_size, fp_size in sizes:
        config = base.with_prf(int_size, fp_size)
        ratios = [slowdown(name, "ppa", config=config, length=length)
                  for name in apps]
        mean = gmean(ratios)
        rows.append([f"{int_size}/{fp_size}", mean])
        summary[f"gmean_{int_size}_{fp_size}"] = mean
    return ExperimentResult(
        experiment_id="fig16", title="PPA slowdown vs PRF size",
        columns=["int/fp PRF", "gmean_slowdown"], rows=rows,
        summary=summary,
        notes="paper: 80/80 costs ~12% (some apps ~30%); benefit "
              "saturates beyond the 180/168 default",
    )


def run_fig17(apps=None, length: int = SWEEP_LENGTH) -> ExperimentResult:
    base = skylake_default()
    return _sweep(
        "fig17", "PPA slowdown vs CSQ size",
        "paper: minimal impact from 10 to 50 entries; 40 default",
        "csq", (10, 20, 30, 40, 50), base.with_csq, apps, length)


def run_fig18(apps=None, length: int = SWEEP_LENGTH) -> ExperimentResult:
    base = skylake_default()
    return _sweep(
        "fig18", "PPA slowdown vs NVM write bandwidth",
        "paper: ~7% at 1 GB/s; ~2% at or beyond the default 2.3 GB/s",
        "gbs", (1.0, 2.3, 4.0, 6.0), base.with_write_bandwidth, apps,
        length)


# ---------------------------------------------------------------------------
# Figure 19 — thread-count sweep on the multicore system
# ---------------------------------------------------------------------------

def run_fig19(apps=None, threads=(8, 16, 32, 64),
              length: int = 4_000) -> ExperimentResult:
    apps = list(apps) if apps is not None else list(MULTITHREADED_APPS)
    rows = []
    summary = {}
    for count in threads:
        ratios = []
        for name in apps:
            base = run_multithreaded(name, "baseline", threads=count,
                                     length=length)
            ppa = run_multithreaded(name, "ppa", threads=count,
                                    length=length)
            ratios.append(ppa.makespan / base.makespan)
        mean = gmean(ratios)
        rows.append([count, mean])
        summary[f"gmean_t{count}"] = mean
    return ExperimentResult(
        experiment_id="fig19",
        title="PPA slowdown vs thread count (multithreaded apps)",
        columns=["threads", "gmean_slowdown"], rows=rows,
        summary=summary,
        notes="paper: 2%-6% mean overhead from 8 to 64 threads",
    )


for _experiment in (
    Experiment("fig1", "ReplayCache slowdown", "~5x mean", run_fig1),
    Experiment("fig5", "Free-register CDF",
               "138/110 int/fp free for 75% of cycles (CPU2006)", run_fig5),
    Experiment("fig8", "PPA & Capri overhead", "2% vs 26%", run_fig8),
    Experiment("fig9", "vs DRAM-only", "16%/14% slower", run_fig9),
    Experiment("fig10", "vs ideal PSP", "PSP 1.39x mean, 2.4x max",
               run_fig10),
    Experiment("fig11", "Region-end stalls", "0.21% mean", run_fig11),
    Experiment("fig12", "PRF-pressure stalls", "+0.07%", run_fig12),
    Experiment("fig13", "Region composition", "301 + 18 per region",
               run_fig13),
    Experiment("fig14", "Deeper hierarchy", "~1% overhead", run_fig14),
    Experiment("fig15", "WPQ sweep", "8-entry ~8%", run_fig15),
    Experiment("fig16", "PRF sweep", "80/80 ~12%", run_fig16),
    Experiment("fig17", "CSQ sweep", "minimal impact", run_fig17),
    Experiment("fig18", "Write-bandwidth sweep", "1 GB/s ~7%", run_fig18),
    Experiment("fig19", "Thread sweep", "2%-6% for 8-64 threads",
               run_fig19),
):
    register(_experiment)
