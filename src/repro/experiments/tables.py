"""Runnable reproductions of the paper's evaluation tables.

Tables 2 and 3 are configuration inputs (they live in :mod:`repro.config`
and :mod:`repro.workloads.profiles`); Tables 1, 4, 5, and 6 plus the
Section 7.13 checkpoint-timing analysis are reproduced here.
"""

from __future__ import annotations

from repro.config import skylake_default
from repro.core.checkpoint import CheckpointPlan, structure_sizes
from repro.experiments.base import Experiment, ExperimentResult
from repro.experiments.registry import register
from repro.hwcost.cacti import (
    csq_cost,
    lcpc_cost,
    maskreg_cost,
    ppa_area_fraction,
)
from repro.hwcost.energy import wsp_energy_table
from repro.persistence.catalog import SCHEME_TRAITS


def _yesno(flag: bool) -> str:
    return "yes" if flag else "no"


# ---------------------------------------------------------------------------
# Table 1 — PPA vs clwb
# ---------------------------------------------------------------------------

def run_tab1(**__) -> ExperimentResult:
    rows = []
    for key in ("clwb", "ppa"):
        traits = SCHEME_TRAITS[key]
        rows.append([
            traits.name,
            _yesno(traits.occupies_store_queue),
            _yesno(traits.tracks_single_stores),
            _yesno(traits.needs_snooping),
            _yesno(traits.reaches_nvm),
        ])
    return ExperimentResult(
        experiment_id="tab1",
        title="PPA vs CLWB",
        columns=["scheme", "occupies SQ", "tracks single stores",
                 "snooping", "reaches NVM"],
        rows=rows,
        notes="paper Table 1: PPA no/no/no/yes; clwb yes/yes/yes/no",
    )


# ---------------------------------------------------------------------------
# Table 4 — hardware overheads of PPA's structures
# ---------------------------------------------------------------------------

def run_tab4(**__) -> ExperimentResult:
    rows = []
    for cost in (lcpc_cost(), maskreg_cost(), csq_cost()):
        rows.append([cost.name, cost.area_um2, cost.latency_ns,
                     cost.access_pj])
    fraction = ppa_area_fraction()
    return ExperimentResult(
        experiment_id="tab4",
        title="PPA hardware overheads (22 nm)",
        columns=["structure", "area_um2", "latency_ns", "access_pj"],
        rows=rows,
        summary={"core_area_fraction_pct": 100.0 * fraction},
        notes="paper Table 4: 12.20/74.03/547.84 um2; total 0.005% of an "
              "11.85 mm2 Xeon core",
    )


# ---------------------------------------------------------------------------
# Table 5 — energy requirement for JIT flushing
# ---------------------------------------------------------------------------

def run_tab5(**__) -> ExperimentResult:
    rows = []
    for budget in wsp_energy_table():
        rows.append([
            f"{budget.scheme} ({budget.model})",
            budget.flush_bytes,
            budget.energy_uj,
            budget.supercap_mm3,
            budget.li_thin_mm3,
            budget.supercap_core_ratio,
        ])
    return ExperimentResult(
        experiment_id="tab5",
        title="Energy requirement for JIT flushing",
        columns=["scheme", "flush_bytes", "energy_uJ", "supercap_mm3",
                 "li_thin_mm3", "supercap/core"],
        rows=rows,
        notes="paper Table 5: PPA 21.7uJ / Capri 0.6mJ / LightPC 189mJ; "
              "PPA needs a 0.06mm3 supercap (0.005 of core size)",
    )


# ---------------------------------------------------------------------------
# Table 6 — comparison of WSP approaches
# ---------------------------------------------------------------------------

def run_tab6(**__) -> ExperimentResult:
    rows = []
    for key in ("wsp-ups", "capri", "replaycache", "ppa"):
        traits = SCHEME_TRAITS[key]
        rows.append([
            traits.name,
            traits.hardware_complexity,
            traits.energy_requirement,
            _yesno(traits.needs_recompilation),
            _yesno(traits.transparent),
            _yesno(traits.enables_dram_cache),
            _yesno(traits.enables_multi_mc),
        ])
    return ExperimentResult(
        experiment_id="tab6",
        title="Comparison of WSP approaches",
        columns=["scheme", "hw complexity", "energy", "recompile",
                 "transparent", "DRAM cache", "multi-MC"],
        rows=rows,
        notes="paper Table 6: PPA is the only low/low/no/yes/yes/yes row",
    )


# ---------------------------------------------------------------------------
# Section 7.13 — JIT checkpoint timing
# ---------------------------------------------------------------------------

def run_sec713(**__) -> ExperimentResult:
    config = skylake_default()
    sizes = structure_sizes(config)
    plan = CheckpointPlan.for_config(config)
    rows = [
        ["CSQ bytes", sizes.csq],
        ["CRT bytes", sizes.crt],
        ["MaskReg bytes", sizes.maskreg],
        ["LCPC bytes", sizes.lcpc],
        ["PRF bytes", sizes.prf],
        ["total bytes", sizes.total],
        ["read cycles", plan.read_cycles],
        ["read ns", plan.read_ns],
        ["flush ns", plan.flush_ns],
        ["total us", plan.total_us],
        ["energy uJ", plan.energy_uj],
        ["supercap mm3", plan.capacitor_volume_mm3],
    ]
    return ExperimentResult(
        experiment_id="sec713",
        title="JIT checkpoint budget",
        columns=["quantity", "value"],
        rows=rows,
        summary={"total_bytes": float(sizes.total),
                 "total_us": plan.total_us,
                 "energy_uj": plan.energy_uj},
        notes="paper: 1838 B, 114.9 ns read, 0.91 us total, 21.7 uJ",
    )


for _experiment in (
    Experiment("tab1", "PPA vs clwb", "qualitative matrix", run_tab1),
    Experiment("tab4", "Hardware overheads", "0.005% core area", run_tab4),
    Experiment("tab5", "Flush energy", "21.7uJ vs 0.6mJ vs 189mJ",
               run_tab5),
    Experiment("tab6", "WSP comparison", "qualitative matrix", run_tab6),
    Experiment("sec713", "Checkpoint timing", "1838B in 0.91us",
               run_sec713),
):
    register(_experiment)
