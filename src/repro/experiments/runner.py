"""Shared machinery for running (application × scheme × config) points.

Runs are memoized: most figures share the same baseline runs, and the
benchmark suite would otherwise re-simulate them dozens of times. Cached
:class:`CoreStats` objects must be treated as read-only.
"""

from __future__ import annotations

from dataclasses import replace

from repro.config import SystemConfig, skylake_default
from repro.isa.trace import Trace
from repro.memory.hierarchy import MemorySystem
from repro.persistence.catalog import make_policy, scheme_backend
from repro.pipeline.core import OoOCore
from repro.pipeline.stats import CoreStats
from repro.workloads.profiles import WorkloadProfile, profile_by_name
from repro.workloads.synthetic import TraceGenerator

DEFAULT_LENGTH = 20_000
DEFAULT_WARMUP = 40_000

_CACHE: dict[tuple, CoreStats] = {}


def clear_cache() -> None:
    """Drop all memoized runs (tests use this for isolation)."""
    _CACHE.clear()


def _config_for(scheme: str, config: SystemConfig | None) -> SystemConfig:
    base = config if config is not None else skylake_default()
    backend = scheme_backend(scheme)
    if base.memory.backend != backend:
        base = replace(base, memory=replace(base.memory, backend=backend))
    return base


def _declare_steady_state(memory: MemorySystem,
                          generator: TraceGenerator) -> None:
    """Mark non-streaming regions DRAM-cache resident: after the billions
    of instructions the paper fast-forwards, a sub-4 GB reused footprint
    sits in the direct-mapped DRAM cache, while streaming data outruns it."""
    if memory.dram_cache is None:
        return
    dram_bytes = memory.cfg.dram_cache.size_bytes if memory.cfg.dram_cache \
        else 4 << 30
    for name, base, size in generator.region_extents():
        if name == "stream":
            # Large streaming data suffers direct-mapped aliasing under OS
            # page scatter; the conflict share grows with the footprint.
            conflict = min(0.6, 2.5 * size / dram_bytes)
        else:
            conflict = min(0.1, size / dram_bytes)
        memory.dram_cache.add_resident_range(base, size, conflict)


def run_app(profile: WorkloadProfile | str, scheme: str,
            config: SystemConfig | None = None,
            length: int = DEFAULT_LENGTH, warmup: int = DEFAULT_WARMUP,
            seed: int = 0, track_values: bool = False,
            use_cache: bool = True) -> CoreStats:
    """Simulate one application under one scheme on one configuration."""
    if isinstance(profile, str):
        profile = profile_by_name(profile)
    cfg = _config_for(scheme, config)
    key = (profile.name, scheme, cfg, length, warmup, seed, track_values)
    if use_cache and key in _CACHE:
        return _CACHE[key]

    generator = TraceGenerator(profile, seed=seed)
    memory = MemorySystem(cfg.memory)
    if warmup > 0:
        _declare_steady_state(memory, generator)
        memory.prewarm_extents(generator.region_extents())
    trace = generator.generate(length)
    core = OoOCore(cfg, make_policy(scheme), memory=memory,
                   track_values=track_values)
    stats = core.run(trace)
    if use_cache:
        _CACHE[key] = stats
    return stats


def slowdown(profile: WorkloadProfile | str, scheme: str,
             baseline: str = "baseline",
             config: SystemConfig | None = None,
             baseline_config: SystemConfig | None = None,
             length: int = DEFAULT_LENGTH, warmup: int = DEFAULT_WARMUP,
             seed: int = 0) -> float:
    """Normalized execution-time ratio of ``scheme`` over ``baseline``."""
    target = run_app(profile, scheme, config=config, length=length,
                     warmup=warmup, seed=seed)
    if baseline_config is None:
        baseline_config = config
    ref = run_app(profile, baseline, config=baseline_config, length=length,
                  warmup=warmup, seed=seed)
    return target.cycles / ref.cycles


def run_multithreaded(profile: WorkloadProfile | str, scheme: str,
                      config: SystemConfig | None = None,
                      threads: int | None = None,
                      length: int = DEFAULT_LENGTH,
                      warmup: int = DEFAULT_WARMUP,
                      seed: int = 0, use_cache: bool = True):
    """Simulate a multithreaded application; returns the MulticoreStats.

    Imported lazily to keep the single-core path free of the multicore
    machinery.
    """
    from repro.multicore.system import MulticoreSystem

    if isinstance(profile, str):
        profile = profile_by_name(profile)
    cfg = _config_for(scheme, config)
    count = threads if threads is not None else profile.threads
    key = ("mt", profile.name, scheme, cfg, count, length, warmup, seed)
    if use_cache and key in _CACHE:
        return _CACHE[key]
    system = MulticoreSystem(cfg, scheme, threads=count)
    result = system.run_profile(profile, length=length, warmup=warmup,
                                seed=seed)
    if use_cache:
        _CACHE[key] = result
    return result
