"""Shared machinery for running (application x scheme x config) points.

Runs are memoized in two tiers: an in-process dict (L1 — most figures
share the same baseline runs, and the benchmark suite would otherwise
re-simulate them dozens of times) in front of the orchestrator's optional
content-addressed disk cache (L2 — survives across processes and makes
repeated figure runs near-instant). Cached :class:`CoreStats` objects must
be treated as read-only.

The actual simulation is delegated to
:func:`repro.orchestrator.execute.simulate_point`, the same entry the
parallel :class:`repro.orchestrator.Campaign` workers use.
"""

from __future__ import annotations

import os

from repro.config import SystemConfig
from repro.orchestrator.cache import (
    CacheCounters,
    ResultCache,
    point_digest,
)
from repro.orchestrator.execute import (
    declare_steady_state as _declare_steady_state,  # noqa: F401 — re-export
)
from repro.orchestrator.execute import run_point_payload, simulate_point
from repro.orchestrator.points import (
    DEFAULT_LENGTH,
    DEFAULT_WARMUP,
    config_for,
    make_point,
    memo_key,
    multicore_memo_key,
)
from repro.orchestrator.serialize import stats_from_payload
from repro.pipeline.stats import CoreStats
from repro.workloads.profiles import WorkloadProfile, profile_by_name

__all__ = [
    "DEFAULT_LENGTH", "DEFAULT_WARMUP", "run_app", "slowdown",
    "run_multithreaded", "clear_cache", "cache_counters",
    "configure_disk_cache", "disk_cache",
]

_CACHE: dict[tuple, object] = {}

# L1 = the in-process dict above; L2 = the orchestrator's disk cache.
_L1_COUNTERS = CacheCounters()
_L2: ResultCache | None = None
_L2_CONFIGURED = False


def clear_cache() -> None:
    """Drop all memoized runs and reset hit/miss counters (tests use this
    for isolation). The disk cache, if any, is left alone."""
    _CACHE.clear()
    _L1_COUNTERS.reset()
    if _L2 is not None:
        _L2.counters.reset()


def configure_disk_cache(root: str | os.PathLike | None) -> None:
    """Enable (or, with ``None``, disable) the L2 disk cache."""
    global _L2, _L2_CONFIGURED
    _L2 = ResultCache(root) if root is not None else None
    _L2_CONFIGURED = True


def disk_cache() -> ResultCache | None:
    """The active L2 cache. Defaults to ``$REPRO_CACHE_DIR`` when that is
    set and :func:`configure_disk_cache` was never called."""
    global _L2, _L2_CONFIGURED
    if not _L2_CONFIGURED:
        env = os.environ.get("REPRO_CACHE_DIR")
        _L2 = ResultCache(env) if env else None
        _L2_CONFIGURED = True
    return _L2


def cache_counters() -> dict[str, int]:
    """Hit/miss counters for both tiers (L2 all-zero when disabled)."""
    l2 = disk_cache()
    return {
        "l1_hits": _L1_COUNTERS.hits,
        "l1_misses": _L1_COUNTERS.misses,
        "l2_hits": l2.counters.hits if l2 is not None else 0,
        "l2_misses": l2.counters.misses if l2 is not None else 0,
    }


def _config_for(scheme: str, config: SystemConfig | None) -> SystemConfig:
    return config_for(scheme, config)


def run_app(profile: WorkloadProfile | str, scheme: str,
            config: SystemConfig | None = None,
            length: int = DEFAULT_LENGTH, warmup: int = DEFAULT_WARMUP,
            seed: int = 0, track_values: bool = False,
            use_cache: bool = True) -> CoreStats:
    """Simulate one application under one scheme on one configuration.

    .. deprecated:: kept as a thin delegate — prefer the unified
       :func:`repro.simulate` facade; campaign-scale sweeps belong in
       :class:`repro.orchestrator.Campaign`, which memoizes through the
       same disk cache and batches compatible points.
    """
    from repro._compat import warn_legacy

    warn_legacy("repro.experiments.runner.run_app()", "repro.simulate()")
    return _run_app(profile, scheme, config=config, length=length,
                    warmup=warmup, seed=seed, track_values=track_values,
                    use_cache=use_cache)


def _run_app(profile: WorkloadProfile | str, scheme: str,
             config: SystemConfig | None = None,
             length: int = DEFAULT_LENGTH, warmup: int = DEFAULT_WARMUP,
             seed: int = 0, track_values: bool = False,
             use_cache: bool = True) -> CoreStats:
    point = make_point(profile, scheme, config=config, length=length,
                       warmup=warmup, seed=seed, track_values=track_values)
    if not use_cache:
        stats, _log = simulate_point(point)
        return stats

    key = memo_key(point)
    if key in _CACHE:
        _L1_COUNTERS.hits += 1
        return _CACHE[key]  # type: ignore[return-value]
    _L1_COUNTERS.misses += 1

    l2 = disk_cache()
    if l2 is not None:
        digest = point_digest(point)
        payload = l2.get(digest)
        if payload is not None:
            stats = stats_from_payload(payload)
            _CACHE[key] = stats
            return stats
        payload = run_point_payload(point)
        l2.put(digest, payload, meta={"point": point.name})
        stats = stats_from_payload(payload)
    else:
        stats, _log = simulate_point(point)
    _CACHE[key] = stats
    return stats


def slowdown(profile: WorkloadProfile | str, scheme: str,
             baseline: str = "baseline",
             config: SystemConfig | None = None,
             baseline_config: SystemConfig | None = None,
             length: int = DEFAULT_LENGTH, warmup: int = DEFAULT_WARMUP,
             seed: int = 0) -> float:
    """Normalized execution-time ratio of ``scheme`` over ``baseline``.

    .. deprecated:: kept as a thin delegate — compute the ratio from two
       :func:`repro.simulate` results instead.
    """
    from repro._compat import warn_legacy

    warn_legacy("repro.experiments.runner.slowdown()", "repro.simulate()")
    return _slowdown(profile, scheme, baseline=baseline, config=config,
                     baseline_config=baseline_config, length=length,
                     warmup=warmup, seed=seed)


def _slowdown(profile: WorkloadProfile | str, scheme: str,
              baseline: str = "baseline",
              config: SystemConfig | None = None,
              baseline_config: SystemConfig | None = None,
              length: int = DEFAULT_LENGTH, warmup: int = DEFAULT_WARMUP,
              seed: int = 0) -> float:
    target = _run_app(profile, scheme, config=config, length=length,
                      warmup=warmup, seed=seed)
    if baseline_config is None:
        baseline_config = config
    ref = _run_app(profile, baseline, config=baseline_config, length=length,
                   warmup=warmup, seed=seed)
    return target.cycles / ref.cycles


def run_multithreaded(profile: WorkloadProfile | str, scheme: str,
                      config: SystemConfig | None = None,
                      threads: int | None = None,
                      length: int = DEFAULT_LENGTH,
                      warmup: int = DEFAULT_WARMUP,
                      seed: int = 0, use_cache: bool = True):
    """Simulate a multithreaded application; returns the MulticoreStats.

    .. deprecated:: kept as a thin delegate — prefer the unified
       :func:`repro.simulate` facade (``core="multicore"``).
    """
    from repro._compat import warn_legacy

    warn_legacy("repro.experiments.runner.run_multithreaded()",
                'repro.simulate(core="multicore")')
    return _run_multithreaded(profile, scheme, config=config,
                              threads=threads, length=length,
                              warmup=warmup, seed=seed,
                              use_cache=use_cache)


def _run_multithreaded(profile: WorkloadProfile | str, scheme: str,
                       config: SystemConfig | None = None,
                       threads: int | None = None,
                       length: int = DEFAULT_LENGTH,
                       warmup: int = DEFAULT_WARMUP,
                       seed: int = 0, use_cache: bool = True):
    """Imported lazily to keep the single-core path free of the multicore
    machinery. Multicore results stay L1-only: their stats type has no
    serialized form yet.
    """
    from repro.multicore.system import MulticoreSystem

    if isinstance(profile, str):
        profile = profile_by_name(profile)
    cfg = config_for(scheme, config)
    count = threads if threads is not None else profile.threads
    key = multicore_memo_key(profile, scheme, cfg, count, length, warmup,
                             seed)
    if use_cache and key in _CACHE:
        _L1_COUNTERS.hits += 1
        return _CACHE[key]
    if use_cache:
        _L1_COUNTERS.misses += 1
    system = MulticoreSystem(cfg, scheme, threads=count)
    result = system.run_profile(profile, length=length, warmup=warmup,
                                seed=seed)
    if use_cache:
        _CACHE[key] = result
    return result
