"""Command-line experiment runner.

Usage::

    python -m repro.experiments list
    python -m repro.experiments fig8 [--length N] [--apps gcc,rb,...]
    python -m repro.experiments all [--length N]
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.registry import all_experiments, get_experiment
from repro.experiments.runner import cache_counters


def _cache_summary() -> str:
    counters = cache_counters()
    return (f"cache: L1 {counters['l1_hits']} hit / "
            f"{counters['l1_misses']} miss, "
            f"L2 {counters['l2_hits']} hit / "
            f"{counters['l2_misses']} miss")


def _run_one(experiment_id: str, kwargs: dict,
             chart: bool = False) -> None:
    experiment = get_experiment(experiment_id)
    print(f"running {experiment_id}: {experiment.title} "
          f"(paper: {experiment.paper_claim})")
    start = time.time()
    result = experiment(**kwargs)
    elapsed = time.time() - start
    print(result.to_text())
    if chart:
        from repro.analysis.charts import bar_chart
        print()
        print(bar_chart(result))
    print(f"[{elapsed:.1f}s, {_cache_summary()}]\n")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments",
        description="Reproduce the paper's figures and tables.")
    parser.add_argument("experiment",
                        help="experiment id (e.g. fig8, tab5), "
                             "'list', or 'all'")
    parser.add_argument("--length", type=int, default=None,
                        help="instructions per trace (figures only)")
    parser.add_argument("--apps", type=str, default=None,
                        help="comma-separated application subset")
    parser.add_argument("--chart", action="store_true",
                        help="render an ASCII bar chart of the result")
    args = parser.parse_args(argv)

    if args.experiment == "list":
        for experiment_id, experiment in sorted(all_experiments().items()):
            print(f"{experiment_id:22s} {experiment.title} "
                  f"(paper: {experiment.paper_claim})")
        return 0

    kwargs: dict = {}
    if args.length is not None:
        kwargs["length"] = args.length
    if args.apps is not None:
        kwargs["apps"] = tuple(args.apps.split(","))

    if args.experiment == "all":
        for experiment_id in sorted(all_experiments()):
            per_experiment = dict(kwargs)
            if experiment_id.startswith(("tab", "sec", "ablation")):
                per_experiment.pop("length", None)
                per_experiment.pop("apps", None)
            if experiment_id == "fig19":
                per_experiment.pop("length", None)
            _run_one(experiment_id, per_experiment, chart=args.chart)
        return 0

    per_experiment = dict(kwargs)
    if args.experiment.startswith(("tab", "sec")):
        per_experiment = {}
    _run_one(args.experiment, per_experiment, chart=args.chart)
    return 0


if __name__ == "__main__":
    sys.exit(main())
