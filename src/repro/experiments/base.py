"""Experiment descriptors: paper expectation vs. measured reproduction."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable


@dataclass
class ExperimentResult:
    """The output of one experiment run."""

    experiment_id: str
    title: str
    # Column names followed by one list per row.
    columns: list[str]
    rows: list[list[Any]]
    summary: dict[str, float] = field(default_factory=dict)
    notes: str = ""

    def to_dict(self) -> dict[str, Any]:
        """JSON-serializable form of the result."""
        return {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [list(row) for row in self.rows],
            "summary": dict(self.summary),
            "notes": self.notes,
        }

    def to_text(self) -> str:
        """Render an ASCII table of the result."""
        widths = [len(c) for c in self.columns]
        rendered_rows = []
        for row in self.rows:
            rendered = [
                f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
            rendered_rows.append(rendered)
            widths = [max(w, len(c)) for w, c in zip(widths, rendered)]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        header = "  ".join(c.ljust(w) for c, w in zip(self.columns, widths))
        lines.append(header)
        lines.append("-" * len(header))
        for rendered in rendered_rows:
            lines.append(
                "  ".join(c.ljust(w) for c, w in zip(rendered, widths)))
        if self.summary:
            parts = ", ".join(
                f"{k}={v:.4f}" for k, v in sorted(self.summary.items()))
            lines.append(f"summary: {parts}")
        if self.notes:
            lines.append(f"notes: {self.notes}")
        return "\n".join(lines)


@dataclass(frozen=True)
class Experiment:
    """One reproducible figure or table from the paper."""

    experiment_id: str        # e.g. "fig8"
    title: str
    paper_claim: str          # what the paper reports
    run: Callable[..., ExperimentResult]

    def __call__(self, **kwargs) -> ExperimentResult:
        return self.run(**kwargs)
