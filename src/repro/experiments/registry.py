"""Registry mapping experiment ids (fig8, tab4, ...) to runnable experiments.

Experiment modules register themselves at import; importing this module
pulls them all in.
"""

from __future__ import annotations

from repro.experiments.base import Experiment

_REGISTRY: dict[str, Experiment] = {}


def register(experiment: Experiment) -> Experiment:
    """Add an experiment to the registry (one per id)."""
    if experiment.experiment_id in _REGISTRY:
        raise ValueError(f"duplicate experiment {experiment.experiment_id}")
    _REGISTRY[experiment.experiment_id] = experiment
    return experiment


def _load_all() -> None:
    # Imported for their registration side effects.
    from repro.experiments import (  # noqa: F401
        ablations,
        extensions,
        figures,
        litmus,
        tables,
    )


def all_experiments() -> dict[str, Experiment]:
    """Every registered experiment, keyed by id."""
    _load_all()
    return dict(_REGISTRY)


def get_experiment(experiment_id: str) -> Experiment:
    """Look one experiment up by id (e.g. ``"fig8"``)."""
    _load_all()
    try:
        return _REGISTRY[experiment_id]
    except KeyError:
        raise ValueError(
            f"unknown experiment {experiment_id!r}; "
            f"known: {sorted(_REGISTRY)}") from None
