"""Process-wide trace interning.

Trace generation is deterministic: :class:`TraceGenerator` seeds its RNG
from ``(profile.name, seed)`` and neither the constructor nor
``region_extents()`` draws from it, so the trace produced for a given
``(profile, length, seed, addr_base, sync_interval)`` tuple is a pure
function of that key. Generating ~12k instructions costs ~0.3 s — about as
much as simulating them — and the bench harness, campaign sweeps, and
repeated ``simulate()`` calls all replay identical traces. Interning
builds each trace once per process and hands out the shared (immutable)
:class:`~repro.isa.trace.Trace`, whose predecoded flat-array form
(:meth:`Trace.decoded`) is memoized on the object and therefore also
shared.

Pool workers call :func:`preload` from their initializer so the traces a
campaign is about to sweep are interned once per worker instead of once
per point.
"""

from __future__ import annotations

from repro.isa.trace import Trace
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.synthetic import TraceGenerator

_DEFAULT_ADDR_BASE = 0x10_0000

# FIFO-capped so pathological sweeps over many (profile, length) combos
# cannot grow memory without bound. 64 traces ≈ a full figure campaign.
_MAX_TRACES = 64

_traces: dict[tuple, Trace] = {}
_thread_traces: dict[tuple, list[Trace]] = {}

stats = {"hits": 0, "builds": 0}


def interned_trace(profile: WorkloadProfile, length: int, seed: int = 0,
                   addr_base: int = _DEFAULT_ADDR_BASE,
                   sync_interval: int | None = None) -> Trace:
    """The shared trace for this key; generated on first request.

    ``profile`` is normally a :class:`WorkloadProfile`; any hashable
    object exposing a ``build_trace(length, seed=, addr_base=,
    sync_interval=)`` hook (e.g. :class:`repro.litmus.workload.
    LitmusWorkload`) is interned the same way, so synthetic and litmus
    points share one campaign/caching path.
    """
    key = (profile, length, seed, addr_base, sync_interval)
    trace = _traces.get(key)
    if trace is None:
        stats["builds"] += 1
        build = getattr(profile, "build_trace", None)
        if build is not None:
            trace = build(length, seed=seed, addr_base=addr_base,
                          sync_interval=sync_interval)
        else:
            generator = TraceGenerator(profile, seed=seed,
                                       addr_base=addr_base)
            trace = generator.generate(length, sync_interval=sync_interval)
        if len(_traces) >= _MAX_TRACES:
            _traces.pop(next(iter(_traces)))
        _traces[key] = trace
    else:
        stats["hits"] += 1
    return trace


def interned_thread_traces(profile: WorkloadProfile, length: int,
                           threads: int | None = None,
                           seed: int = 0) -> list[Trace]:
    """Shared per-thread traces for a multicore run (disjoint heaps)."""
    from repro.workloads.multithreaded import generate_thread_traces

    count = profile.threads if threads is None else threads
    key = (profile, length, count, seed)
    traces = _thread_traces.get(key)
    if traces is None:
        stats["builds"] += 1
        traces = generate_thread_traces(profile, length, threads=count,
                                        seed=seed)
        if len(_thread_traces) >= _MAX_TRACES:
            _thread_traces.pop(next(iter(_thread_traces)))
        _thread_traces[key] = traces
    else:
        stats["hits"] += 1
    return traces


def region_extents(profile: WorkloadProfile,
                   addr_base: int = _DEFAULT_ADDR_BASE
                   ) -> tuple[tuple[str, int, int], ...]:
    """Region extents for a profile without generating any instructions.

    Constructing a generator draws nothing from its RNG, so this is cheap
    and exactly matches the extents of any trace interned for the same
    ``(profile, addr_base)``. Workload objects carrying their own
    ``region_extents`` hook (litmus workloads: empty — nothing to
    prewarm) short-circuit the generator.
    """
    extents = getattr(profile, "region_extents", None)
    if extents is not None:
        return tuple(extents(addr_base=addr_base))
    generator = TraceGenerator(profile, seed=0, addr_base=addr_base)
    return tuple(generator.region_extents())


def preload(specs) -> int:
    """Intern traces for ``(profile, length, seed)`` specs; returns count."""
    for profile, length, seed in specs:
        interned_trace(profile, length, seed=seed)
    return len(specs)


def clear() -> None:
    """Drop all interned traces (tests use this to isolate counters)."""
    _traces.clear()
    _thread_traces.clear()
    stats["hits"] = 0
    stats["builds"] = 0
