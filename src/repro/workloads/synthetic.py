"""Deterministic synthetic trace generation from workload profiles."""

from __future__ import annotations

import random
from collections import deque

from repro.isa.instructions import (
    Instruction,
    Opcode,
    RegClass,
    Register,
)
from repro.isa.trace import Trace
from repro.workloads.profiles import MemRegion, WorkloadProfile

_LINE = 64
_WORD = 8


class _RegionCursor:
    """Address stream for one locality class: sequential runs with jumps."""

    def __init__(self, region: MemRegion, base: int,
                 rng: random.Random) -> None:
        self.region = region
        self.base = base
        self.size = region.size_bytes
        self.rng = rng
        self.cursor = 0

    def next_addr(self) -> int:
        if self.rng.random() < self.region.seq_prob:
            self.cursor = (self.cursor + _WORD) % self.size
        else:
            self.cursor = self.rng.randrange(0, self.size // _WORD) * _WORD
        return self.base + self.cursor


class TraceGenerator:
    """Generates a single-thread instruction trace from a profile.

    Address spaces of different generator instances can be separated with
    ``addr_base`` (used for data-race-free multithreaded traces).
    """

    def __init__(self, profile: WorkloadProfile, seed: int = 0,
                 addr_base: int = 0x10_0000) -> None:
        self.profile = profile
        self.rng = random.Random(f"{profile.name}:{seed}")
        base = addr_base
        self._load_cursors: list[_RegionCursor] = []
        self._store_cursors: list[_RegionCursor] = []
        self._load_weights: list[float] = []
        self._store_weights: list[float] = []
        for region in profile.regions:
            # Loads and stores walk independent cursors over the same
            # region; stores are made at least moderately sequential so the
            # same-line runs real write streams exhibit (and PPA's persist
            # coalescing exploits) are present.
            self._load_cursors.append(_RegionCursor(region, base, self.rng))
            store_region = MemRegion(
                region.name, region.size_bytes, region.load_weight,
                region.store_weight, max(region.seq_prob, 0.95))
            self._store_cursors.append(
                _RegionCursor(store_region, base, self.rng))
            self._load_weights.append(region.load_weight)
            self._store_weights.append(region.store_weight)
            # Pad between regions so they never share a cache line.
            base += region.size_bytes + _LINE
        # Recently defined registers per class, newest last.
        self._recent: dict[RegClass, deque[int]] = {
            RegClass.INT: deque([0], maxlen=profile.dep_window),
            RegClass.FP: deque([0], maxlen=profile.dep_window),
        }
        self._pc = 0x400000

    # ------------------------------------------------------------------
    # Operand selection
    # ------------------------------------------------------------------

    # Integer registers 0-2 act as stable base pointers: they are never
    # redefined, so address computations are ready early and independent
    # loads can overlap (memory-level parallelism).
    _NUM_BASE_REGS = 3

    def _pick_dest(self, cls: RegClass) -> Register:
        limit = (self.profile.int_workset if cls is RegClass.INT
                 else self.profile.fp_workset)
        if cls is RegClass.INT:
            index = self._NUM_BASE_REGS + self.rng.randrange(
                max(1, limit - self._NUM_BASE_REGS))
        else:
            index = self.rng.randrange(limit)
        self._recent[cls].append(index)
        return Register(cls, index)

    def _pick_addr_src(self) -> Register:
        if self.rng.random() < 0.75:
            return Register(RegClass.INT,
                            self.rng.randrange(self._NUM_BASE_REGS))
        return self._pick_src(RegClass.INT)

    def _pick_src(self, cls: RegClass) -> Register:
        recent = self._recent[cls]
        if recent and self.rng.random() < 0.7:
            return Register(cls, self.rng.choice(list(recent)))
        limit = (self.profile.int_workset if cls is RegClass.INT
                 else self.profile.fp_workset)
        return Register(cls, self.rng.randrange(limit))

    def _pick_store_data(self, cls: RegClass) -> Register:
        """The store's data register; with probability ``turnover`` it is
        the most recently defined register (so a later redefinition forces
        a MaskReg deferral)."""
        recent = self._recent[cls]
        if recent and self.rng.random() < self.profile.store_reg_turnover:
            return Register(cls, recent[-1])
        return self._pick_src(cls)

    def _pick_addr(self, store: bool) -> int:
        if store:
            cursor = self.rng.choices(self._store_cursors,
                                      weights=self._store_weights)[0]
        else:
            cursor = self.rng.choices(self._load_cursors,
                                      weights=self._load_weights)[0]
        return cursor.next_addr()

    def memory_stream(self, length: int):
        """Yield ``(line_addr, is_write)`` pairs without building
        instructions — used to prewarm caches cheaply."""
        p = self.profile
        mem_frac = p.load_frac + p.store_frac
        for __ in range(length):
            if self.rng.random() >= mem_frac:
                continue
            store = self.rng.random() < p.store_frac / mem_frac
            yield self._pick_addr(store) & ~0x3F, store

    def _next_pc(self) -> int:
        self._pc += 4
        return self._pc

    def region_extents(self) -> list[tuple[str, int, int]]:
        """(name, base, size) of each locality region's address range."""
        return [(c.region.name, c.base, c.size) for c in self._load_cursors]

    # ------------------------------------------------------------------
    # Instruction synthesis
    # ------------------------------------------------------------------

    def _compute_op(self) -> Instruction:
        p = self.profile
        if self.rng.random() < p.cmp_frac:
            return Instruction(
                pc=self._next_pc(), opcode=Opcode.CMP,
                srcs=(self._pick_src(RegClass.INT),
                      self._pick_src(RegClass.INT)))
        fp = self.rng.random() < p.fp_frac
        cls = RegClass.FP if fp else RegClass.INT
        roll = self.rng.random()
        if roll < p.div_frac:
            opcode = Opcode.FP_DIV if fp else Opcode.INT_DIV
        elif roll < p.div_frac + p.mul_frac:
            opcode = Opcode.FP_MUL if fp else Opcode.INT_MUL
        else:
            opcode = Opcode.FP_ALU if fp else Opcode.INT_ALU
        srcs = (self._pick_src(cls), self._pick_src(cls))
        return Instruction(pc=self._next_pc(), opcode=opcode,
                           dest=self._pick_dest(cls), srcs=srcs)

    def next_instruction(self) -> Instruction:
        p = self.profile
        roll = self.rng.random()
        if roll < p.load_frac:
            cls = RegClass.FP if self.rng.random() < p.fp_frac \
                else RegClass.INT
            addr_src = self._pick_addr_src()
            return Instruction(
                pc=self._next_pc(), opcode=Opcode.LOAD,
                dest=self._pick_dest(cls), srcs=(addr_src,),
                addr=self._pick_addr(store=False))
        roll -= p.load_frac
        if roll < p.store_frac:
            cls = RegClass.FP if self.rng.random() < p.fp_frac \
                else RegClass.INT
            data = self._pick_store_data(cls)
            addr_src = self._pick_addr_src()
            return Instruction(
                pc=self._next_pc(), opcode=Opcode.STORE,
                srcs=(data, addr_src),
                addr=self._pick_addr(store=True))
        roll -= p.store_frac
        if roll < p.branch_frac:
            return Instruction(
                pc=self._next_pc(), opcode=Opcode.BRANCH,
                srcs=(self._pick_src(RegClass.INT),),
                mispredicted=self.rng.random() < p.mispredict_rate)
        return self._compute_op()

    def generate(self, length: int, name: str | None = None,
                 sync_interval: int | None = None) -> Trace:
        """Produce a trace of ``length`` dynamic instructions."""
        if length <= 0:
            raise ValueError("trace length must be positive")
        interval = (self.profile.sync_interval if sync_interval is None
                    else sync_interval)
        instructions = []
        for i in range(length):
            if interval and i > 0 and i % interval == 0:
                instructions.append(Instruction(
                    pc=self._next_pc(), opcode=Opcode.SYNC,
                    srcs=(self._pick_src(RegClass.INT),)))
                continue
            instructions.append(self.next_instruction())
        return Trace(instructions,
                     name=name if name is not None else self.profile.name)


def generate_trace(profile: WorkloadProfile, length: int = 20_000,
                   seed: int = 0) -> Trace:
    """Convenience wrapper: one single-thread trace for a profile."""
    return TraceGenerator(profile, seed=seed).generate(length)
