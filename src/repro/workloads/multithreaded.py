"""Multithreaded trace generation for SPLASH3/STAMP/WHISPER workloads.

The paper assumes data-race-free applications (Section 6): conflicting
accesses are ordered by synchronization primitives. We generate one trace
per thread with *disjoint* heaps (trivially DRF) plus periodic SYNC
instructions that the multicore system treats as barriers — and that PPA
treats as region boundaries.
"""

from __future__ import annotations

from repro.isa.trace import Trace
from repro.workloads.profiles import WorkloadProfile
from repro.workloads.synthetic import TraceGenerator

# Each thread's address space starts this far apart; larger than any
# profile footprint so heaps never overlap.
_THREAD_STRIDE = 1 << 32


def generate_thread_traces(profile: WorkloadProfile, length: int,
                           threads: int | None = None,
                           seed: int = 0) -> list[Trace]:
    """One trace per thread, with disjoint address spaces and synchronized
    SYNC placement so barrier k appears at the same index in every trace."""
    count = profile.threads if threads is None else threads
    if count <= 0:
        raise ValueError("thread count must be positive")
    traces = []
    for tid in range(count):
        generator = TraceGenerator(
            profile, seed=seed * 1000 + tid,
            addr_base=0x10_0000 + tid * _THREAD_STRIDE)
        traces.append(generator.generate(
            length, name=f"{profile.name}/t{tid}"))
    return traces
