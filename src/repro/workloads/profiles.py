"""Workload profiles for the paper's 41 applications.

The authors run real binaries under gem5; without their testbed we model
each application as a parameterized statistical workload whose instruction
mix, register behaviour, and memory locality are calibrated to the
characteristics the paper states or implies:

* bzip2 and libquantum have heavy register usage → short PPA regions
  (Section 7.5); hmmer, lbm, lu-cg, tpcc need many live registers
  (Section 7.8).
* lbm and pc stream with poor locality → many DRAM-cache misses (Fig 9).
* rb (red-black tree) has high locality (4 % L2 miss) and little baseline
  write traffic, making PPA's extra writes visible (Sections 7.1/7.2).
* water-ns / water-sp have store-dense, shorter regions → the largest
  region-end stall fractions (Section 7.3).
* WHISPER and Mini-apps footprints follow Table 3.

A profile's address space is three locality classes: a *hot* set sized for
the L1/L2, a *warm* set sized to be LLC/DRAM-cache resident, and a *stream*
that defeats caching. The memory-intensive apps of Figure 10 are exactly
the ones with meaningful stream weight.

Every profile is deterministic given a seed; nothing here depends on
wall-clock time or global randomness.
"""

from __future__ import annotations

from dataclasses import dataclass

SUITES = ("CPU2006", "CPU2017", "SPLASH3", "STAMP", "WHISPER", "Mini-apps")


@dataclass(frozen=True)
class MemRegion:
    """One locality class of a workload's address space."""

    name: str
    size_bytes: int
    load_weight: float
    store_weight: float
    seq_prob: float          # probability the next access continues a run


@dataclass(frozen=True)
class WorkloadProfile:
    """Statistical description of one application."""

    name: str
    suite: str
    # Instruction mix (fractions of the dynamic stream; the remainder after
    # loads/stores/branches is compute, split by fp_frac/mul/div).
    load_frac: float = 0.25
    store_frac: float = 0.07
    branch_frac: float = 0.15
    fp_frac: float = 0.0          # fraction of compute ops that are FP
    mul_frac: float = 0.08        # fraction of compute ops that multiply
    div_frac: float = 0.01
    # Fraction of compute ops that are compares/tests writing only flags —
    # they consume no physical register (the paper observes only ~30 % of
    # ROB instructions define new registers).
    cmp_frac: float = 0.45
    # Memory locality classes; weights are relative.
    regions: tuple[MemRegion, ...] = (
        MemRegion("stack", 2 << 10, 4.8, 20.0, 0.7),
        MemRegion("hot", 32 << 10, 8.0, 8.0, 0.5),
        MemRegion("warm", 2 << 20, 3.0, 2.0, 0.5),
        MemRegion("stream", 64 << 20, 0.3, 0.2, 0.95),
    )
    # Control flow.
    mispredict_rate: float = 0.01
    # Dataflow: sources are drawn from the last `dep_window` definitions.
    dep_window: int = 8
    # Register behaviour: how many integer/fp architectural registers the
    # code actively cycles through (higher = faster redefinition of stored
    # registers = faster masked-register accumulation = shorter regions).
    int_workset: int = 12
    fp_workset: int = 16
    # Probability a store's data register is redefined soon after the store
    # (drives MaskReg deferrals; "register-hungry" codes sit near 1.0).
    store_reg_turnover: float = 0.6
    # Multithreading (SPLASH3/STAMP/WHISPER run 8 threads by default).
    threads: int = 1
    sync_interval: int = 0        # instructions between sync primitives

    def __post_init__(self) -> None:
        total = self.load_frac + self.store_frac + self.branch_frac
        if not 0.0 < total < 1.0:
            raise ValueError(f"{self.name}: mix fractions sum to {total}")
        if self.suite not in SUITES:
            raise ValueError(f"{self.name}: unknown suite {self.suite}")

    @property
    def footprint_bytes(self) -> int:
        return sum(r.size_bytes for r in self.regions)


def _regions(hot_kb: float, warm_mb: float, stream_mb: float,
             hot_w: tuple[float, float], warm_w: tuple[float, float],
             stream_w: tuple[float, float],
             stream_seq: float = 0.95) -> tuple[MemRegion, ...]:
    """Compact constructor for the common locality layout.

    Besides the three profile-specific classes there is always a small
    *stack*: a few cache lines written over and over (frames, spills,
    locals). Real write streams are dominated by it, and it is what makes
    persist coalescing effective.
    """
    return (
        MemRegion("stack", 2 << 10, hot_w[0] * 0.6, hot_w[1] * 2.5, 0.7),
        MemRegion("hot", int(hot_kb * 1024), hot_w[0], hot_w[1], 0.5),
        MemRegion("warm", int(warm_mb * (1 << 20)), warm_w[0], warm_w[1],
                  0.5),
        MemRegion("stream", int(stream_mb * (1 << 20)), stream_w[0],
                  stream_w[1], stream_seq),
    )

# Cache-friendly layout: almost everything in the hot/warm sets.
_FRIENDLY = _regions(48, 2, 64, (8, 8), (3, 2), (0.25, 0.15))


def _p(**kwargs) -> WorkloadProfile:
    return WorkloadProfile(**kwargs)


# ---------------------------------------------------------------------------
# SPEC CPU2006 (14 apps)
# ---------------------------------------------------------------------------

_CPU2006 = [
    _p(name="perlbench", suite="CPU2006", load_frac=0.26, store_frac=0.05,
       branch_frac=0.20, mispredict_rate=0.02, int_workset=12,
       regions=_FRIENDLY),
    _p(name="bzip2", suite="CPU2006", load_frac=0.28, store_frac=0.06,
       branch_frac=0.15, int_workset=15, store_reg_turnover=0.95,
       dep_window=4,
       regions=_regions(64, 4, 64, (7, 7), (3, 2), (0.5, 0.3))),
    _p(name="gcc", suite="CPU2006", load_frac=0.26, store_frac=0.055,
       branch_frac=0.21, mispredict_rate=0.025, int_workset=13,
       regions=_regions(64, 4, 96, (7, 8), (3, 2), (0.5, 0.3))),
    _p(name="mcf", suite="CPU2006", load_frac=0.33, store_frac=0.035,
       branch_frac=0.19, mispredict_rate=0.03, dep_window=3,
       regions=_regions(16, 48, 512, (3, 4), (4, 2), (3, 0.5), 0.3)),
    _p(name="milc", suite="CPU2006", load_frac=0.30, store_frac=0.05,
       branch_frac=0.03, fp_frac=0.85, fp_workset=24,
       regions=_regions(32, 16, 320, (4, 5), (3, 2), (3, 1.5))),
    _p(name="namd", suite="CPU2006", load_frac=0.25, store_frac=0.035,
       branch_frac=0.08, fp_frac=0.80, fp_workset=20,
       regions=_FRIENDLY),
    _p(name="gobmk", suite="CPU2006", load_frac=0.24, store_frac=0.05,
       branch_frac=0.20, mispredict_rate=0.035, int_workset=13,
       regions=_FRIENDLY),
    _p(name="hmmer", suite="CPU2006", load_frac=0.30, store_frac=0.05,
       branch_frac=0.08, int_workset=15, store_reg_turnover=0.9,
       dep_window=5, regions=_FRIENDLY),
    _p(name="sjeng", suite="CPU2006", load_frac=0.22, store_frac=0.04,
       branch_frac=0.21, mispredict_rate=0.04, int_workset=12,
       regions=_FRIENDLY),
    _p(name="libquantum", suite="CPU2006", load_frac=0.26, store_frac=0.05,
       branch_frac=0.25, int_workset=15, store_reg_turnover=0.95,
       dep_window=3,
       regions=_regions(16, 2, 256, (1, 2), (1, 1), (6, 3), 0.98)),
    _p(name="lbm", suite="CPU2006", load_frac=0.30, store_frac=0.07,
       branch_frac=0.02, store_reg_turnover=0.4, fp_frac=0.75,
       regions=_regions(16, 4, 400, (1, 1), (1, 1), (6, 6), 0.97)),
    _p(name="sphinx3", suite="CPU2006", load_frac=0.30, store_frac=0.03,
       branch_frac=0.11, fp_frac=0.6,
       regions=_regions(32, 8, 128, (5, 6), (3, 2), (1.5, 0.5))),
    _p(name="soplex", suite="CPU2006", load_frac=0.29, store_frac=0.035,
       branch_frac=0.16, fp_frac=0.5, mispredict_rate=0.02,
       regions=_regions(32, 24, 192, (4, 5), (3, 2), (2, 0.5), 0.6)),
    _p(name="h264ref", suite="CPU2006", load_frac=0.35, store_frac=0.05,
       branch_frac=0.08, mul_frac=0.2, int_workset=14,
       regions=_FRIENDLY),
]

# ---------------------------------------------------------------------------
# SPEC CPU2017 (8 apps, rate workloads)
# ---------------------------------------------------------------------------

_CPU2017 = [
    _p(name="perlbench_r", suite="CPU2017", load_frac=0.26, store_frac=0.05,
       branch_frac=0.20, mispredict_rate=0.02, int_workset=12,
       regions=_FRIENDLY),
    _p(name="gcc_r", suite="CPU2017", load_frac=0.27, store_frac=0.055,
       branch_frac=0.21, mispredict_rate=0.025, int_workset=13,
       regions=_regions(64, 6, 128, (7, 8), (3, 2), (0.5, 0.3))),
    _p(name="mcf_r", suite="CPU2017", load_frac=0.34, store_frac=0.035,
       branch_frac=0.19, mispredict_rate=0.03, dep_window=3,
       regions=_regions(16, 48, 448, (3, 4), (4, 2), (3, 0.5), 0.3)),
    _p(name="omnetpp_r", suite="CPU2017", load_frac=0.30, store_frac=0.055,
       branch_frac=0.19, mispredict_rate=0.02,
       regions=_regions(32, 24, 160, (4, 5), (3, 2), (2, 0.8), 0.4)),
    _p(name="xalancbmk_r", suite="CPU2017", load_frac=0.31, store_frac=0.04,
       branch_frac=0.23, mispredict_rate=0.015,
       regions=_regions(48, 8, 96, (6, 7), (3, 2), (1, 0.3))),
    _p(name="x264_r", suite="CPU2017", load_frac=0.28, store_frac=0.045,
       branch_frac=0.07, fp_frac=0.3, mul_frac=0.2,
       regions=_FRIENDLY),
    _p(name="deepsjeng_r", suite="CPU2017", load_frac=0.23, store_frac=0.04,
       branch_frac=0.21, mispredict_rate=0.04, int_workset=12,
       regions=_FRIENDLY),
    _p(name="nab_r", suite="CPU2017", load_frac=0.27, store_frac=0.035,
       branch_frac=0.10, fp_frac=0.75, fp_workset=20,
       regions=_FRIENDLY),
]

# ---------------------------------------------------------------------------
# SPLASH3 (6 apps, 8 threads)
# ---------------------------------------------------------------------------

_SPLASH3 = [
    _p(name="barnes", suite="SPLASH3", load_frac=0.29, store_frac=0.04,
       branch_frac=0.12, fp_frac=0.6, threads=8, sync_interval=2500,
       regions=_regions(32, 12, 64, (5, 6), (3, 2), (1, 0.4))),
    _p(name="fmm", suite="SPLASH3", load_frac=0.28, store_frac=0.035,
       branch_frac=0.10, fp_frac=0.7, threads=8, sync_interval=3000,
       regions=_regions(32, 8, 64, (5, 6), (3, 2), (1, 0.4))),
    _p(name="ocean", suite="SPLASH3", load_frac=0.32, store_frac=0.055,
       branch_frac=0.06, fp_frac=0.7, threads=8, sync_interval=1500,
       regions=_regions(16, 12, 224, (2, 2), (2, 2), (4, 3), 0.96)),
    _p(name="radiosity", suite="SPLASH3", load_frac=0.27, store_frac=0.045,
       branch_frac=0.16, fp_frac=0.4, threads=8, sync_interval=2000,
       regions=_FRIENDLY),
    _p(name="water-ns", suite="SPLASH3", load_frac=0.28, store_frac=0.07,
       branch_frac=0.06, fp_frac=0.7, fp_workset=26, threads=8,
       sync_interval=900, store_reg_turnover=0.9,
       regions=_regions(24, 4, 48, (5, 3), (3, 3), (1, 1.5), 0.85)),
    _p(name="water-sp", suite="SPLASH3", load_frac=0.28, store_frac=0.08,
       branch_frac=0.06, fp_frac=0.7, fp_workset=26, threads=8,
       sync_interval=800, store_reg_turnover=0.9,
       regions=_regions(24, 4, 48, (5, 3), (3, 3), (1, 1.5), 0.85)),
]

# ---------------------------------------------------------------------------
# STAMP (4 apps, 8 threads)
# ---------------------------------------------------------------------------

_STAMP = [
    _p(name="genome", suite="STAMP", load_frac=0.29, store_frac=0.04,
       branch_frac=0.17, threads=8, sync_interval=1800,
       regions=_regions(32, 24, 96, (5, 6), (3, 2), (1.5, 0.5), 0.5)),
    _p(name="intruder", suite="STAMP", load_frac=0.30, store_frac=0.05,
       branch_frac=0.19, mispredict_rate=0.025, threads=8,
       sync_interval=1200,
       regions=_regions(32, 16, 96, (5, 6), (3, 2), (1.5, 0.5), 0.5)),
    _p(name="kmeans", suite="STAMP", load_frac=0.31, store_frac=0.04,
       branch_frac=0.08, fp_frac=0.6, threads=8, sync_interval=2200,
       regions=_regions(16, 8, 192, (2, 3), (2, 2), (4, 1.5), 0.95)),
    _p(name="vacation", suite="STAMP", load_frac=0.31, store_frac=0.045,
       branch_frac=0.18, threads=8, sync_interval=1500,
       regions=_regions(32, 32, 96, (5, 6), (3, 2), (1.5, 0.5), 0.4)),
]

# ---------------------------------------------------------------------------
# WHISPER (7 apps, Table 3 footprints, 8 threads)
# ---------------------------------------------------------------------------

_WHISPER = [
    _p(name="pc", suite="WHISPER", load_frac=0.31, store_frac=0.065,
       branch_frac=0.15, threads=8, sync_interval=1000,
       regions=_regions(16, 8, 196, (1, 1), (1, 1), (5, 5), 0.25)),
    _p(name="rb", suite="WHISPER", load_frac=0.30, store_frac=0.065,
       branch_frac=0.18, threads=8, sync_interval=900,
       store_reg_turnover=0.85,
       regions=_regions(96, 6, 160, (8, 8), (3, 3), (0.2, 0.2), 0.3)),
    _p(name="sps", suite="WHISPER", load_frac=0.30, store_frac=0.065,
       branch_frac=0.12, threads=8, sync_interval=1100,
       regions=_regions(16, 8, 264, (1, 1), (1, 1), (5, 5), 0.2)),
    _p(name="tatp", suite="WHISPER", load_frac=0.29, store_frac=0.05,
       branch_frac=0.17, threads=8, sync_interval=1200,
       regions=_regions(48, 24, 224, (5, 6), (3, 2), (2, 1), 0.4)),
    _p(name="tpcc", suite="WHISPER", load_frac=0.30, store_frac=0.055,
       branch_frac=0.17, int_workset=15, store_reg_turnover=0.85,
       threads=8, sync_interval=1000,
       regions=_regions(48, 16, 72, (5, 6), (3, 3), (2, 1), 0.4)),
    _p(name="r20w80", suite="WHISPER", load_frac=0.24, store_frac=0.07,
       branch_frac=0.16, threads=8, sync_interval=950,
       regions=_regions(64, 24, 128, (5, 7), (3, 3), (2, 1), 0.5)),
    _p(name="r50w50", suite="WHISPER", load_frac=0.30, store_frac=0.045,
       branch_frac=0.16, threads=8, sync_interval=1100,
       regions=_regions(64, 24, 128, (6, 7), (3, 2), (2, 0.7), 0.5)),
]

# ---------------------------------------------------------------------------
# DOE Mini-apps (2 apps, Table 3)
# ---------------------------------------------------------------------------

_MINIAPPS = [
    _p(name="lulesh", suite="Mini-apps", load_frac=0.30, store_frac=0.05,
       branch_frac=0.07, store_reg_turnover=0.4, fp_frac=0.8, fp_workset=24,
       regions=_regions(32, 24, 448, (3, 4), (3, 3), (3, 2), 0.93)),
    _p(name="xsbench", suite="Mini-apps", load_frac=0.36, store_frac=0.02,
       branch_frac=0.12, fp_frac=0.4, dep_window=3,
       regions=_regions(16, 8, 209, (1, 2), (1, 1), (6, 1), 0.15)),
]

ALL_PROFILES: tuple[WorkloadProfile, ...] = tuple(
    _CPU2006 + _CPU2017 + _SPLASH3 + _STAMP + _WHISPER + _MINIAPPS)

_BY_NAME = {p.name: p for p in ALL_PROFILES}

if len(_BY_NAME) != len(ALL_PROFILES):
    raise RuntimeError("duplicate workload profile names")


def profile_by_name(name: str) -> WorkloadProfile:
    """Look up one application profile."""
    try:
        return _BY_NAME[name]
    except KeyError:
        raise ValueError(f"unknown workload {name!r}") from None


def profiles_in_suite(suite: str) -> list[WorkloadProfile]:
    """All profiles of one benchmark suite."""
    if suite not in SUITES:
        raise ValueError(f"unknown suite {suite!r}; options: {SUITES}")
    return [p for p in ALL_PROFILES if p.suite == suite]


def memory_intensive_profiles() -> list[WorkloadProfile]:
    """The high-L2-miss subset the paper compares against ideal PSP
    (Figure 10): applications with substantial stream weight."""
    chosen = []
    for profile in ALL_PROFILES:
        stream = next(r for r in profile.regions if r.name == "stream")
        total = sum(r.load_weight for r in profile.regions)
        if stream.load_weight / total >= 0.25:
            chosen.append(profile)
    return chosen
