"""Workload inventory CLI.

Usage::

    python -m repro.workloads                 # the 41-application table
    python -m repro.workloads gcc             # one profile in detail
    python -m repro.workloads --suite WHISPER # one suite (Table 3 flavour)
    python -m repro.workloads --json          # machine-readable inventory
"""

from __future__ import annotations

import argparse
import dataclasses
import sys

from repro.cli import add_json_flag, emit_json
from repro.workloads.profiles import (
    ALL_PROFILES,
    SUITES,
    WorkloadProfile,
    profile_by_name,
    profiles_in_suite,
)


def _mb(size_bytes: int) -> str:
    return f"{size_bytes / (1 << 20):.0f}MB"


def _summary_row(profile: WorkloadProfile) -> str:
    return (f"{profile.name:14s} {profile.suite:10s} "
            f"ld={profile.load_frac:4.0%} st={profile.store_frac:5.1%} "
            f"br={profile.branch_frac:4.0%} fp={profile.fp_frac:4.0%} "
            f"fp_ws={profile.fp_workset:2d} thr={profile.threads} "
            f"foot={_mb(profile.footprint_bytes):>7s}")


def _detail(profile: WorkloadProfile) -> str:
    lines = [f"{profile.name} ({profile.suite})",
             f"  mix: {profile.load_frac:.0%} loads, "
             f"{profile.store_frac:.1%} stores, "
             f"{profile.branch_frac:.0%} branches, "
             f"{profile.fp_frac:.0%} FP compute, "
             f"{profile.cmp_frac:.0%} compares",
             f"  registers: int workset {profile.int_workset}, "
             f"fp workset {profile.fp_workset}, "
             f"store-reg turnover {profile.store_reg_turnover:.2f}",
             f"  control: {profile.mispredict_rate:.1%} mispredicts, "
             f"dep window {profile.dep_window}",
             f"  threads: {profile.threads}"
             + (f", sync every {profile.sync_interval} instructions"
                if profile.sync_interval else ""),
             "  memory regions:"]
    for region in profile.regions:
        lines.append(
            f"    {region.name:7s} {_mb(region.size_bytes):>7s}  "
            f"load_w={region.load_weight:<5g} "
            f"store_w={region.store_weight:<5g} "
            f"seq={region.seq_prob:.2f}")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.workloads",
        description="Inspect the 41 calibrated application profiles.")
    parser.add_argument("name", nargs="?", help="one application to detail")
    parser.add_argument("--suite", choices=SUITES, default=None)
    add_json_flag(parser, "the profile inventory")
    args = parser.parse_args(argv)

    if args.name:
        profile = profile_by_name(args.name)
        if args.json:
            emit_json(dataclasses.asdict(profile))
        else:
            print(_detail(profile))
        return 0
    profiles = (profiles_in_suite(args.suite) if args.suite
                else list(ALL_PROFILES))
    if args.json:
        emit_json({"suite": args.suite,
                   "profiles": [dataclasses.asdict(p) for p in profiles]})
        return 0
    for profile in profiles:
        print(_summary_row(profile))
    print(f"\n{len(profiles)} applications"
          + (f" in {args.suite}" if args.suite else " across 6 suites"))
    return 0


if __name__ == "__main__":
    sys.exit(main())
