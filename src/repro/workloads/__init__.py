"""Synthetic workloads standing in for the paper's 41 applications."""

from repro.workloads.profiles import (
    ALL_PROFILES,
    SUITES,
    MemRegion,
    WorkloadProfile,
    profile_by_name,
    profiles_in_suite,
)
from repro.workloads.synthetic import TraceGenerator, generate_trace
from repro.workloads.multithreaded import generate_thread_traces

__all__ = [
    "ALL_PROFILES",
    "MemRegion",
    "SUITES",
    "TraceGenerator",
    "WorkloadProfile",
    "generate_thread_traces",
    "generate_trace",
    "profile_by_name",
    "profiles_in_suite",
]
