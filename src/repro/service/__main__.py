"""Campaign service CLI.

Usage::

    python -m repro.service serve [--socket PATH | --port N]
        [--workers K] [--quota Q] [--timeout S] [--retries R]
        [--cache-dir DIR | --no-cache] [--sanitize]
        [--trace-dir DIR] [--heartbeat S]
    python -m repro.service submit fig16 --tenant alice [--apps a,b]
        [--length N] [--quota Q] [--wait] [--json]
    python -m repro.service submit matrix --tenant bob --apps mcf,lbm
        --schemes ppa,baseline [--wait]
    python -m repro.service status [--json]
    python -m repro.service health
    python -m repro.service shutdown

``serve`` runs the daemon in the foreground (SIGINT/SIGTERM stop it
cleanly); every other command talks to a running daemon over its socket
(``--socket``/``$REPRO_SERVICE_SOCKET``, default per-user temp path) or
``--port`` on localhost.
"""

from __future__ import annotations

import argparse
import asyncio
import contextlib
import json
import pathlib
import signal
import sys

from repro.cli import add_json_flag
from repro.orchestrator.cache import ResultCache, default_cache_dir

from repro.service.client import ServiceClient, default_socket_path
from repro.service.scheduler import FleetScheduler
from repro.service.server import ServiceServer


def _client(args) -> ServiceClient:
    if getattr(args, "port", None):
        return ServiceClient(host=args.host, port=args.port)
    return ServiceClient(socket_path=args.socket or default_socket_path())


def _cmd_serve(args) -> int:
    cache = None
    if not args.no_cache:
        cache = ResultCache(pathlib.Path(args.cache_dir)
                            if args.cache_dir else default_cache_dir())
    scheduler = FleetScheduler(
        cache=cache, workers=args.workers, quota=args.quota,
        timeout=args.timeout, retries=args.retries,
        sanitize=True if args.sanitize else None,
        engine=args.engine, trace_dir=args.trace_dir,
        heartbeat=args.heartbeat)
    socket_path = None if args.port is not None \
        else (args.socket or default_socket_path())
    server = ServiceServer(scheduler, socket_path=socket_path,
                           host=args.host, port=args.port)

    async def _serve() -> None:
        await server.start()
        loop = asyncio.get_running_loop()
        for signum in (signal.SIGINT, signal.SIGTERM):
            with contextlib.suppress(NotImplementedError):
                loop.add_signal_handler(signum, server.stop)
        print(f"[service] listening on {server.address} "
              f"({args.workers} workers, cache: "
              f"{cache.root if cache else 'off'})", flush=True)
        await server.serve_until_shutdown()
        print("[service] stopped", flush=True)

    asyncio.run(_serve())
    return 0


def _cmd_submit(args) -> int:
    client = _client(args)
    kwargs: dict = {"quota": args.quota}
    if args.campaign == "matrix":
        if not args.apps or not args.schemes:
            print("matrix submissions need --apps and --schemes",
                  file=sys.stderr)
            return 2
        kwargs["matrix"] = {"apps": args.apps.split(","),
                            "schemes": args.schemes.split(","),
                            "length": args.length or 12_000}
    else:
        kwargs["sweep"] = args.campaign
        if args.apps:
            kwargs["apps"] = args.apps.split(",")
        if args.length:
            kwargs["length"] = args.length
    job = client.submit(args.tenant, **kwargs)
    if not args.wait:
        if args.json:
            print(json.dumps(job, indent=2, allow_nan=False))
        else:
            print(f"[{job['tenant']}] {job['id']} queued: "
                  f"{job['total']} points")
        return 0

    for event in client.events(job["id"]):
        if args.json or event.get("type") != "point":
            continue
        tag = {"hit": "hit ", "sim": "sim ", "dedup": "dup ",
               "fail": "FAIL"}.get(event["source"], "?   ")
        print(f"  [{event['done']:4d}/{event['total']}] {tag} "
              f"{event['point']}", flush=True)
    final = client.results(job["id"])
    if args.json:
        print(json.dumps(final, indent=2, allow_nan=False))
    else:
        snap = final["campaign"]
        print(f"[{snap['tenant']}] {snap['id']} {snap['state']}: "
              f"{snap['done']}/{snap['total']} points, "
              f"{snap['cache_hits']} hits, {snap['simulated']} simulated, "
              f"{snap['deduped']} deduped, {snap['failures']} failed")
        for row in final.get("summary") or []:
            print(f"  {row['label']:12s} {row['gmean_slowdown']:.3f}")
    return 0 if final["campaign"]["state"] == "done" else 1


def _cmd_status(args) -> int:
    status = _client(args).status()
    if args.json:
        print(json.dumps(status, indent=2, allow_nan=False))
        return 0
    print(f"uptime:   {status['uptime']:.1f}s, "
          f"{status['workers']} workers "
          f"(pool generation {status['pool_generation']})")
    print(f"cache:    {status['cache_root'] or 'off'}")
    for tenant in status["tenants"]:
        print(f"tenant {tenant['name']}: {tenant['inflight']} in flight, "
              f"{tenant['queued']} queued (quota {tenant['quota']})")
    for job in status["campaigns"]:
        print(f"  {job['id']} [{job['tenant']}] {job['state']}: "
              f"{job['done']}/{job['total']} done, "
              f"{job['cache_hits']} hits, {job['simulated']} sim, "
              f"{job['deduped']} deduped")
    return 0


def _cmd_health(args) -> int:
    try:
        info = _client(args).healthz()
    except (OSError, RuntimeError) as exc:
        print(f"unreachable: {exc}", file=sys.stderr)
        return 1
    print(json.dumps(info, allow_nan=False))
    return 0


def _cmd_shutdown(args) -> int:
    _client(args).shutdown()
    print("shutdown requested")
    return 0


def _add_endpoint_args(parser) -> None:
    parser.add_argument("--socket", type=str, default=None,
                        help="daemon unix socket path (default: "
                             "$REPRO_SERVICE_SOCKET or a per-user temp "
                             "path)")
    parser.add_argument("--host", type=str, default="127.0.0.1")
    parser.add_argument("--port", type=int, default=None,
                        help="talk TCP to localhost instead of the socket")


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Long-lived multi-tenant campaign daemon.")
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="run the daemon (foreground)")
    _add_endpoint_args(serve)
    serve.add_argument("--workers", type=int, default=2,
                       help="process-pool worker fleet size")
    serve.add_argument("--quota", type=int, default=None,
                       help="default per-tenant in-flight point cap "
                            "(default: the fleet size)")
    serve.add_argument("--timeout", type=float, default=None,
                       help="per-point deadline in seconds")
    serve.add_argument("--retries", type=int, default=1,
                       help="retries per point on worker failure")
    serve.add_argument("--cache-dir", type=str, default=None,
                       help="L2 result cache directory (default: "
                            "$REPRO_CACHE_DIR or ~/.cache/repro-sim)")
    serve.add_argument("--no-cache", action="store_true",
                       help="run without the L2 result cache")
    serve.add_argument("--sanitize", action="store_true",
                       help="simulate under the persistency sanitizer")
    serve.add_argument("--engine", type=str, default=None,
                       choices=("auto", "scalar", "batched"),
                       help="simulation engine (default: $REPRO_ENGINE "
                            "or 'auto'; 'auto' batches compatible "
                            "submissions into lockstep cohorts)")
    serve.add_argument("--trace-dir", type=str, default=None,
                       help="capture per-point kernel traces plus "
                            "scheduler stitch manifests under this "
                            "directory (forces the scalar kernel; merge "
                            "with 'python -m repro.observe stitch')")
    serve.add_argument("--heartbeat", type=float, default=10.0,
                       help="seconds between liveness heartbeats on "
                            "campaign event streams (0 disables)")
    serve.set_defaults(func=_cmd_serve)

    submit = sub.add_parser("submit", help="submit a campaign")
    _add_endpoint_args(submit)
    submit.add_argument("campaign",
                        help="fig15|fig16|fig17|fig18 sweep, or 'matrix'")
    submit.add_argument("--tenant", type=str, required=True)
    submit.add_argument("--apps", type=str, default=None,
                        help="comma-separated application subset")
    submit.add_argument("--schemes", type=str, default=None,
                        help="comma-separated schemes (matrix)")
    submit.add_argument("--length", type=int, default=None)
    submit.add_argument("--quota", type=int, default=None,
                        help="per-tenant in-flight cap override")
    submit.add_argument("--wait", action="store_true",
                        help="follow the event stream until completion")
    add_json_flag(submit)
    submit.set_defaults(func=_cmd_submit)

    status = sub.add_parser("status", help="daemon-wide status")
    _add_endpoint_args(status)
    add_json_flag(status)
    status.set_defaults(func=_cmd_status)

    health = sub.add_parser("health", help="liveness probe")
    _add_endpoint_args(health)
    health.set_defaults(func=_cmd_health)

    shutdown = sub.add_parser("shutdown", help="stop the daemon")
    _add_endpoint_args(shutdown)
    shutdown.set_defaults(func=_cmd_shutdown)

    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
