"""The campaign daemon's HTTP/JSON front door.

A deliberately small HTTP/1.1 server over asyncio streams — stdlib only,
one request per connection, JSON bodies — listening on a Unix domain
socket (the default for a local daemon) or localhost TCP.

API (all JSON)::

    GET  /healthz                       liveness + uptime
    GET  /metrics                       Prometheus text exposition
    GET  /v1/status                     fleet, tenants, campaigns, metrics
    POST /v1/campaigns                  submit; body below
    GET  /v1/campaigns/<id>             one campaign's live snapshot
    GET  /v1/campaigns/<id>/results     outcomes [+ ?stats=1 payloads]
    GET  /v1/campaigns/<id>/events      NDJSON progress stream (replays
                                        history, follows until finished,
                                        then the connection closes)
    DELETE /v1/campaigns/<id>           forget a finished campaign
    POST /v1/shutdown                   graceful stop

Submission body: ``{"tenant": str, "quota"?: int}`` plus exactly one of

* ``{"sweep": "fig15|fig16|fig17|fig18", "apps"?: [...], "length"?: N}``
* ``{"matrix": {"apps": [...], "schemes": [...], "length"?: N}}``
* ``{"points": [<serialized SimPoint>, ...]}`` (see
  :func:`repro.orchestrator.serialize.point_to_dict`)
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import os
import threading
from typing import Any

from repro.orchestrator.campaigns import build_matrix, build_sweep, sweep_spec
from repro.orchestrator.points import SimPoint
from repro.orchestrator.serialize import point_from_dict

from repro.service.scheduler import FleetScheduler

MAX_BODY = 64 * 1024 * 1024


class ApiError(Exception):
    """A client error with an HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


class ServiceServer:
    """Bind the scheduler to a local socket and speak HTTP/JSON."""

    def __init__(self, scheduler: FleetScheduler,
                 socket_path: str | None = None,
                 host: str = "127.0.0.1",
                 port: int | None = None) -> None:
        if socket_path is None and port is None:
            raise ValueError("need a unix socket path or a TCP port")
        self.scheduler = scheduler
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self._server: asyncio.base_events.Server | None = None
        self._shutdown = asyncio.Event()

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        await self.scheduler.start()
        if self.socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.socket_path)
            self._server = await asyncio.start_unix_server(
                self._handle, path=self.socket_path)
        else:
            self._server = await asyncio.start_server(
                self._handle, host=self.host, port=self.port)
            self.port = self._server.sockets[0].getsockname()[1]

    @property
    def address(self) -> str:
        if self.socket_path is not None:
            return f"unix:{self.socket_path}"
        return f"http://{self.host}:{self.port}"

    async def serve_until_shutdown(self) -> None:
        """Serve requests until ``POST /v1/shutdown`` (or :meth:`stop`)."""
        assert self._server is not None, "call start() first"
        async with self._server:
            await self._shutdown.wait()
        await self.scheduler.close()
        if self.socket_path is not None:
            with contextlib.suppress(FileNotFoundError):
                os.unlink(self.socket_path)

    def stop(self) -> None:
        self._shutdown.set()

    # ------------------------------------------------------------------
    # HTTP plumbing
    # ------------------------------------------------------------------

    async def _handle(self, reader: asyncio.StreamReader,
                      writer: asyncio.StreamWriter) -> None:
        try:
            method, path, query, body = await self._read_request(reader)
            await self._route(method, path, query, body, writer)
        except ApiError as exc:
            await self._respond(writer, exc.status,
                                {"error": str(exc)})
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        except Exception as exc:  # noqa: BLE001 — one bad request
            with contextlib.suppress(ConnectionError):
                await self._respond(writer, 500, {"error": repr(exc)})
        finally:
            with contextlib.suppress(ConnectionError, OSError):
                writer.close()
                await writer.wait_closed()

    async def _read_request(self, reader: asyncio.StreamReader):
        request_line = (await reader.readline()).decode("latin-1").strip()
        if not request_line:
            raise ApiError(400, "empty request")
        try:
            method, target, _version = request_line.split(" ", 2)
        except ValueError:
            raise ApiError(400, f"bad request line: {request_line!r}") \
                from None
        path, _, query_string = target.partition("?")
        query: dict[str, str] = {}
        for pair in query_string.split("&"):
            if pair:
                key, _, value = pair.partition("=")
                query[key] = value
        content_length = 0
        while True:
            line = (await reader.readline()).decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            if name.strip().lower() == "content-length":
                content_length = int(value.strip())
        if content_length > MAX_BODY:
            raise ApiError(413, "request body too large")
        body: dict[str, Any] = {}
        if content_length:
            raw = await reader.readexactly(content_length)
            try:
                body = json.loads(raw)
            except ValueError:
                raise ApiError(400, "request body is not JSON") from None
        return method.upper(), path, query, body

    async def _respond(self, writer: asyncio.StreamWriter, status: int,
                       document: Any) -> None:
        payload = json.dumps(document, allow_nan=False).encode()
        reason = {200: "OK", 202: "Accepted", 400: "Bad Request",
                  404: "Not Found", 409: "Conflict",
                  413: "Payload Too Large",
                  500: "Internal Server Error"}.get(status, "?")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload)
        await writer.drain()

    async def _respond_text(self, writer: asyncio.StreamWriter,
                            status: int, text: str,
                            content_type: str = "text/plain") -> None:
        payload = text.encode("utf-8")
        reason = {200: "OK"}.get(status, "?")
        writer.write(
            f"HTTP/1.1 {status} {reason}\r\n"
            f"Content-Type: {content_type}\r\n"
            f"Content-Length: {len(payload)}\r\n"
            f"Connection: close\r\n\r\n".encode() + payload)
        await writer.drain()

    async def _stream_headers(self, writer: asyncio.StreamWriter) -> None:
        # Close-delimited NDJSON: no Content-Length; the stream ends when
        # the campaign finishes and the server closes the connection.
        writer.write(b"HTTP/1.1 200 OK\r\n"
                     b"Content-Type: application/x-ndjson\r\n"
                     b"Connection: close\r\n\r\n")
        await writer.drain()

    # ------------------------------------------------------------------
    # Routes
    # ------------------------------------------------------------------

    async def _route(self, method: str, path: str, query: dict[str, str],
                     body: dict[str, Any],
                     writer: asyncio.StreamWriter) -> None:
        parts = [p for p in path.split("/") if p]
        if method == "GET" and path == "/healthz":
            await self._respond(writer, 200, {
                "ok": True, "service": "repro.service",
                "uptime": self.scheduler.status()["uptime"]})
        elif method == "GET" and path == "/metrics":
            from repro.observe.prometheus import (
                CONTENT_TYPE,
                render_prometheus,
            )
            await self._respond_text(
                writer, 200, render_prometheus(self.scheduler),
                content_type=CONTENT_TYPE)
        elif method == "GET" and path == "/v1/status":
            await self._respond(writer, 200, self.scheduler.status())
        elif method == "POST" and path == "/v1/campaigns":
            await self._submit(body, writer)
        elif method == "POST" and path == "/v1/shutdown":
            await self._respond(writer, 200, {"ok": True,
                                              "stopping": True})
            self.stop()
        elif len(parts) == 3 and parts[:2] == ["v1", "campaigns"]:
            job = self._job(parts[2])
            if method == "GET":
                await self._respond(writer, 200, job.to_dict())
            elif method == "DELETE":
                if not self.scheduler.drop(job.id):
                    raise ApiError(409, f"{job.id} is still running")
                await self._respond(writer, 200, {"ok": True})
            else:
                raise ApiError(400, f"unsupported method {method}")
        elif len(parts) == 4 and parts[:2] == ["v1", "campaigns"] \
                and parts[3] == "results" and method == "GET":
            job = self._job(parts[2])
            await self._respond(writer, 200, self.scheduler.job_results(
                job, include_stats=query.get("stats") in ("1", "true")))
        elif len(parts) == 4 and parts[:2] == ["v1", "campaigns"] \
                and parts[3] == "events" and method == "GET":
            await self._stream_events(self._job(parts[2]), writer)
        else:
            raise ApiError(404, f"no route for {method} {path}")

    def _job(self, job_id: str):
        job = self.scheduler.jobs.get(job_id)
        if job is None:
            raise ApiError(404, f"unknown campaign {job_id!r}")
        return job

    async def _submit(self, body: dict[str, Any],
                      writer: asyncio.StreamWriter) -> None:
        tenant = body.get("tenant")
        if not tenant or not isinstance(tenant, str):
            raise ApiError(400, "submission needs a 'tenant' string")
        points = self._build_points(body)
        quota = body.get("quota")
        if quota is not None and (not isinstance(quota, int) or quota < 1):
            raise ApiError(400, "'quota' must be a positive integer")
        meta = {key: body[key] for key in
                ("sweep", "apps", "length", "matrix", "label")
                if key in body}
        job = await self.scheduler.submit(tenant, points, meta=meta,
                                          quota=quota)
        await self._respond(writer, 202, job.to_dict())

    def _build_points(self, body: dict[str, Any]) -> list[SimPoint]:
        given = [key for key in ("sweep", "matrix", "points")
                 if key in body]
        if len(given) != 1:
            raise ApiError(
                400, "submission needs exactly one of 'sweep', 'matrix', "
                     "or 'points'")
        try:
            if "sweep" in body:
                spec = sweep_spec(body["sweep"],
                                  apps=body.get("apps"),
                                  length=body.get("length"))
                return build_sweep(spec)
            if "matrix" in body:
                matrix = body["matrix"]
                return build_matrix(matrix["apps"], matrix["schemes"],
                                    length=matrix.get("length", 12_000))
            return [point_from_dict(data) for data in body["points"]]
        except ApiError:
            raise
        except (KeyError, ValueError, TypeError) as exc:
            raise ApiError(400, f"bad submission: {exc!r}") from None

    async def _stream_events(self, job, writer) -> None:
        await self._stream_headers(writer)
        cursor = 0
        while True:
            events = await job.events_since(cursor)
            for event in events:
                writer.write(json.dumps(event, allow_nan=False).encode()
                             + b"\n")
            await writer.drain()
            cursor += len(events)
            if job.finished.is_set() and cursor >= len(job.events):
                return


# ---------------------------------------------------------------------------
# Embedding helper (tests, notebooks): run the daemon on a background
# thread with its own event loop, controlled synchronously.
# ---------------------------------------------------------------------------

class BackgroundService:
    """Handle for a daemon running on its own thread."""

    def __init__(self, server: ServiceServer, loop: asyncio.AbstractEventLoop,
                 thread: threading.Thread) -> None:
        self.server = server
        self._loop = loop
        self._thread = thread

    @property
    def address(self) -> str:
        return self.server.address

    @property
    def port(self) -> int | None:
        return self.server.port

    def stop(self, timeout: float = 10.0) -> None:
        self._loop.call_soon_threadsafe(self.server.stop)
        self._thread.join(timeout)


def serve_background(scheduler: FleetScheduler,
                     socket_path: str | None = None,
                     host: str = "127.0.0.1",
                     port: int | None = 0,
                     ready_timeout: float = 30.0) -> BackgroundService:
    """Start a daemon on a fresh thread + event loop; returns once it is
    accepting connections (with the resolved address)."""
    server = ServiceServer(scheduler, socket_path=socket_path, host=host,
                           port=None if socket_path is not None else port)
    started = threading.Event()
    failure: list[BaseException] = []
    loop = asyncio.new_event_loop()

    def runner() -> None:
        asyncio.set_event_loop(loop)
        try:
            loop.run_until_complete(server.start())
        except BaseException as exc:  # noqa: BLE001 — surfaced to caller
            failure.append(exc)
            started.set()
            return
        started.set()
        try:
            loop.run_until_complete(server.serve_until_shutdown())
        finally:
            loop.close()

    thread = threading.Thread(target=runner, name="repro-service",
                              daemon=True)
    thread.start()
    if not started.wait(ready_timeout):
        raise TimeoutError("service did not start in time")
    if failure:
        raise failure[0]
    return BackgroundService(server, loop, thread)
