"""Fair multi-tenant scheduling over one shared worker fleet.

The :class:`FleetScheduler` owns the daemon's process pool and the L2
result cache. Tenants submit campaigns (lists of :class:`SimPoint`\\ s);
their points queue per tenant, and a single dispatch loop hands them to
the pool in strict round-robin order across tenants — a tenant that
submits 10,000 points cannot starve one that submits 10 — bounded by a
per-tenant in-flight quota.

Every point passes through three tiers:

1. **L2 probe** — the content-addressed :class:`ResultCache`; a hit costs
   no worker slot at all.
2. **Single-flight** — a digest already being simulated (by *any*
   tenant) is joined, not re-run; followers wait on the leader's future
   and the simulation happens exactly once.
3. **Simulate** — a pool worker runs the point under a per-point
   deadline measured from dispatch; a worker that blows its deadline is
   killed and the fleet rebuilt so the slot comes back.

Per-tenant counters (submitted/hits/simulated/deduped/failures/…) live
in a :class:`repro.telemetry.metrics.MetricsRegistry` and surface through
the service status API.
"""

from __future__ import annotations

import asyncio
import itertools
import multiprocessing
import time
from collections import deque
from concurrent.futures import BrokenExecutor, ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any

from repro.config import sanitize_requested
from repro.observe.slog import log_for_run
from repro.telemetry.metrics import MetricsRegistry

from repro.orchestrator.cache import ResultCache, point_digest
from repro.orchestrator.execute import (
    point_trace_filename,
    run_cohort_payloads,
    run_point_payload,
    worker_init,
)
from repro.orchestrator.points import SimPoint

# How many times a point may be bounced by a *pool* death (another
# point's kill, a worker OOM) without being charged a retry of its own.
POOL_BOUNCE_BUDGET = 3


@dataclass
class PointTask:
    """One schedulable unit: a campaign point plus its cache digest."""

    job: "CampaignJob"
    index: int
    point: SimPoint
    digest: str
    attempts: int = 0
    bounces: int = 0
    enqueued_at: float = field(default_factory=time.time)
    # Scheduler-side stitch spans ([{name, start, end}] in wall-clock
    # seconds); a list only when the fleet traces (--trace-dir), so the
    # untraced path stays one `is None` test per record site.
    spans: list[dict[str, Any]] | None = None

    @property
    def width(self) -> int:
        return 1


@dataclass
class CohortTask:
    """A lockstep cohort scheduled as one unit: its lanes advance on one
    worker through the batched kernel (:mod:`repro.engine.batched`).

    The cohort counts ``width`` lanes against its tenant's in-flight
    quota, and any failure splits it back into scalar :class:`PointTask`
    singletons re-queued at the front of the tenant's queue with fresh
    attempt budgets — the cohort's failure is not any one lane's failure.
    """

    job: "CampaignJob"
    indices: list[int]
    points: list[SimPoint]
    digests: list[str]
    enqueued_at: float = field(default_factory=time.time)

    @property
    def width(self) -> int:
        return len(self.indices)


@dataclass
class TenantState:
    """One tenant's queue, quota, and live accounting."""

    name: str
    quota: int
    queue: deque[PointTask] = field(default_factory=deque)
    inflight: int = 0

    def to_dict(self) -> dict[str, Any]:
        return {"name": self.name, "quota": self.quota,
                "queued": len(self.queue), "inflight": self.inflight}


class CampaignJob:
    """One submitted campaign: points, per-point outcomes, event stream."""

    def __init__(self, job_id: str, tenant: str, points: list[SimPoint],
                 meta: dict[str, Any]) -> None:
        self.id = job_id
        self.tenant = tenant
        self.points = points
        self.meta = meta                      # sweep name/apps/... echo
        self.state = "queued"
        self.created_at = time.time()
        self.finished_at: float | None = None
        self.done = 0
        self.hits = 0
        self.simulated = 0
        self.deduped = 0
        self.failures = 0
        # index -> worker payload (the cache/worker wire form); outcomes
        # carry the light per-point digest for status/results endpoints.
        self.payloads: dict[int, dict[str, Any]] = {}
        # index -> scheduler-side stitch spans (traced fleets only).
        self.sched_spans: dict[int, list[dict[str, Any]]] = {}
        self.outcomes: list[dict[str, Any] | None] = [None] * len(points)
        self.events: list[dict[str, Any]] = []
        self._event_cond = asyncio.Condition()
        self.finished = asyncio.Event()

    @property
    def total(self) -> int:
        return len(self.points)

    def to_dict(self) -> dict[str, Any]:
        return {
            "id": self.id,
            "tenant": self.tenant,
            "state": self.state,
            "total": self.total,
            "done": self.done,
            "cache_hits": self.hits,
            "simulated": self.simulated,
            "deduped": self.deduped,
            "failures": self.failures,
            "created_at": self.created_at,
            "finished_at": self.finished_at,
            "meta": self.meta,
        }

    async def record(self, event: dict[str, Any]) -> None:
        """Append one progress event and wake streaming readers."""
        async with self._event_cond:
            self.events.append(event)
            self._event_cond.notify_all()

    async def events_since(self, cursor: int) -> list[dict[str, Any]]:
        """Events past ``cursor``, waiting until at least one exists or
        the campaign is finished."""
        async with self._event_cond:
            while cursor >= len(self.events) and not self.finished.is_set():
                try:
                    await asyncio.wait_for(self._event_cond.wait(), 0.5)
                except asyncio.TimeoutError:
                    continue
            return self.events[cursor:]


class FleetScheduler:
    """Round-robin multiplexer of tenant campaigns onto a process pool."""

    # How long one disk-inventory scan is served from memory before the
    # next /v1/status (or /metrics scrape) pays for a fresh one.
    CACHE_INVENTORY_TTL = 10.0

    def __init__(self, cache: ResultCache | None, workers: int = 2,
                 quota: int | None = None, timeout: float | None = None,
                 retries: int = 1, sanitize: bool | None = None,
                 engine: str | None = None,
                 trace_dir: str | None = None,
                 heartbeat: float | None = 10.0) -> None:
        from repro.engine import resolve_engine

        self.cache = cache
        self.workers = max(1, workers)
        # Execution engine (repro.engine contract). Submissions are
        # planned into lockstep cohorts, each a single schedulable unit;
        # sanitized fleets stay scalar (the sanitizer instruments the
        # scalar kernel).
        self.engine = resolve_engine(engine)
        # Per-tenant in-flight cap; by default every tenant may fill the
        # fleet alone — round-robin dispatch still splits it fairly the
        # moment a second tenant shows up.
        self.default_quota = quota if quota is not None else self.workers
        self.timeout = timeout
        self.retries = max(0, retries)
        self.sanitize = sanitize_requested() if sanitize is None \
            else sanitize
        # Traced fleets run scalar (runtime_scalar_reason: the tracer
        # instruments the scalar kernel) and collect scheduler-side
        # stitch spans per point; ``repro.observe stitch`` merges them
        # with the worker kernel traces written under this directory.
        self.trace_dir = str(trace_dir) if trace_dir is not None else None
        self.heartbeat = heartbeat if heartbeat and heartbeat > 0 else None
        self._slog = log_for_run()
        self.metrics = MetricsRegistry()
        self.tenants: dict[str, TenantState] = {}
        self.jobs: dict[str, CampaignJob] = {}
        self._job_ids = itertools.count(1)
        self._rr = deque()                    # tenant round-robin order
        self._inflight_digests: dict[str, asyncio.Future] = {}
        self._pool: ProcessPoolExecutor | None = None
        self._pool_generation = 0
        self._pool_lock: asyncio.Lock | None = None
        self._wakeup: asyncio.Event | None = None
        self._dispatcher: asyncio.Task | None = None
        self._heartbeat_task: asyncio.Task | None = None
        self._point_tasks: set[asyncio.Task] = set()
        # (monotonic deadline, inventory dict) — cache_inventory() TTL.
        self._inventory: tuple[float, dict[str, Any]] | None = None
        self.started_at = time.time()
        self._closed = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def start(self) -> None:
        self._pool_lock = asyncio.Lock()
        self._wakeup = asyncio.Event()
        self._pool = self._make_pool()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())
        if self.heartbeat is not None:
            self._heartbeat_task = asyncio.create_task(
                self._heartbeat_loop())

    async def close(self) -> None:
        self._closed = True
        for looper in (self._dispatcher, self._heartbeat_task):
            if looper is None:
                continue
            looper.cancel()
            try:
                await looper
            except asyncio.CancelledError:
                pass
        for task in list(self._point_tasks):
            task.cancel()
        if self._point_tasks:
            await asyncio.gather(*self._point_tasks,
                                 return_exceptions=True)
        if self._pool is not None:
            self._pool.shutdown(wait=False, cancel_futures=True)

    def _make_pool(self) -> ProcessPoolExecutor:
        # The daemon holds live client sockets whenever a pool worker is
        # (re)created, so plain fork would copy those fds into long-lived
        # workers — the server's close() then never reaches the client
        # (no FIN while a worker still holds the fd) and event streams
        # hang until the client's socket timeout. forkserver workers fork
        # from an exec'd helper that never saw our sockets.
        context = multiprocessing.get_context("forkserver")
        # Preload the simulator in the forkserver so each worker fork is
        # cheap; a no-op once the forkserver is already running.
        context.set_forkserver_preload(["repro.orchestrator.execute"])
        return ProcessPoolExecutor(max_workers=self.workers,
                                   mp_context=context,
                                   initializer=worker_init,
                                   initargs=((), self.engine))

    async def _heartbeat_loop(self) -> None:
        """Periodic liveness beat on every unfinished campaign's event
        stream, so a client tailing a stalled campaign (wedged worker,
        quota starvation) sees progress *of time* even when no point
        completes between beats. ``client.wait()`` ignores non-point
        event types, so old clients are unaffected."""
        while True:
            await asyncio.sleep(self.heartbeat)
            now = time.time()
            for job in list(self.jobs.values()):
                if job.finished.is_set():
                    continue
                await job.record({
                    "type": "heartbeat", "campaign": job.id,
                    "tenant": job.tenant, "ts": now,
                    "done": job.done, "total": job.total,
                    "age": now - job.created_at,
                })

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------

    def tenant(self, name: str, quota: int | None = None) -> TenantState:
        state = self.tenants.get(name)
        if state is None:
            state = self.tenants[name] = TenantState(
                name=name, quota=quota or self.default_quota)
            self._rr.append(name)
        elif quota is not None:
            state.quota = quota
        return state

    async def submit(self, tenant_name: str, points: list[SimPoint],
                     meta: dict[str, Any] | None = None,
                     quota: int | None = None) -> CampaignJob:
        """Queue one campaign for ``tenant_name``; returns immediately."""
        if self._closed:
            raise RuntimeError("scheduler is shut down")
        if not points:
            raise ValueError("a campaign needs at least one point")
        tenant = self.tenant(tenant_name, quota)
        job = CampaignJob(f"c{next(self._job_ids):04d}", tenant_name,
                          points, meta or {})
        self.jobs[job.id] = job
        job.state = "running"
        for task in self._plan_tasks(job, points):
            tenant.queue.append(task)
        self._counter(tenant_name, "submitted_points").inc(len(points))
        self.metrics.counter("service.campaigns").inc()
        if self._slog is not None:
            self._slog.emit("campaign.submitted", campaign=job.id,
                            tenant=tenant_name, points=len(points),
                            meta=job.meta)
        self._wakeup.set()
        return job

    def _counter(self, tenant: str, name: str):
        return self.metrics.counter(f"tenant.{tenant}.{name}")

    def _record_queue_wait(self, tenant: TenantState,
                           task: PointTask | CohortTask) -> None:
        wait = max(0.0, time.time() - task.enqueued_at)
        self.metrics.histogram("service.queue_wait_seconds").add(wait)
        self.metrics.histogram(
            f"tenant.{tenant.name}.queue_wait_seconds").add(wait)
        if isinstance(task, PointTask) and task.spans is not None:
            task.spans.append({"name": "queue-wait",
                               "start": task.enqueued_at,
                               "end": time.time()})

    @staticmethod
    def _span(task: PointTask, name: str, start: float) -> None:
        """Record one closed scheduler-side span (traced fleets only)."""
        if task.spans is not None:
            task.spans.append({"name": name, "start": start,
                               "end": time.time()})

    def _lane_metrics(self, payload: dict[str, Any], wall: float) -> None:
        """Engine introspection counters from one simulated payload:
        which kernel actually ran, lockstep divergence, and retired
        instruction throughput split batched-vs-scalar."""
        engine = payload.get("engine", "scalar")
        self.metrics.counter(f"service.lanes_{engine}").inc()
        if payload.get("diverged_at") is not None:
            self.metrics.counter("service.lane_divergences").inc()
        instructions = payload.get("instructions", 0)
        if wall > 0 and instructions:
            self.metrics.histogram(
                f"service.{engine}_instrs_per_sec").add(
                    instructions / wall)

    def _count_scalar_reasons(self, reasons: dict[str, int]) -> None:
        """Fleet-wide ``service.scalar_reason.<slug>`` counters: why
        planned points stayed on the scalar kernel, keyed by the
        planner's ``unbatchable_reason`` strings (slugged for metric
        names). Answers "why didn't this sweep batch?" from /metrics."""
        import re

        for reason, count in reasons.items():
            slug = re.sub(r"[^a-z0-9]+", "_", reason.lower()).strip("_")
            self.metrics.counter(f"service.scalar_reason.{slug}").inc(
                count)

    def _plan_tasks(self, job: CampaignJob, points: list[SimPoint]) \
            -> list[PointTask | CohortTask]:
        """Schedulable units for one submission: lockstep cohorts plus
        scalar singletons, ordered by first point index."""
        tracing = self.trace_dir is not None

        def singleton(index: int) -> PointTask:
            return PointTask(
                job=job, index=index, point=points[index],
                digest=point_digest(points[index]),
                spans=[] if tracing else None)

        # Traced fleets stay scalar for the same reason sanitized ones
        # do: runtime_scalar_reason() forces the scalar kernel in the
        # worker, so a cohort would only be re-split there anyway.
        if self.engine == "scalar" or self.sanitize or tracing:
            reason = ("engine=scalar" if self.engine == "scalar"
                      else "sanitizer needs scalar instrumentation"
                      if self.sanitize
                      else "tracing needs scalar instrumentation")
            self._count_scalar_reasons({reason: len(points)})
            return [singleton(index) for index in range(len(points))]
        from repro.engine.plan import plan_points

        plan = plan_points(points, self.engine)
        self._count_scalar_reasons(plan.summary()["scalar_reasons"])
        # Width-1 cohorts (engine="batched" only) are demoted to point
        # tasks: the worker resolves the engine per point (pinned by
        # worker_init), so the point still runs the batched kernel while
        # keeping the singleton retry/dedup machinery the only per-point
        # path.
        tasks: list[PointTask | CohortTask] = [
            CohortTask(job=job, indices=list(cohort.indices),
                       points=list(cohort.points),
                       digests=[point_digest(p) for p in cohort.points])
            for cohort in plan.cohorts if len(cohort.indices) > 1]
        self.metrics.counter("service.cohorts").inc(len(tasks))
        for cohort_task in tasks:
            self.metrics.histogram("service.cohort_width").add(
                float(cohort_task.width))
        tasks.extend(singleton(cohort.indices[0])
                     for cohort in plan.cohorts
                     if len(cohort.indices) == 1)
        tasks.extend(singleton(index) for index in plan.scalar_indices)
        tasks.sort(key=lambda t: t.indices[0]
                   if isinstance(t, CohortTask) else t.index)
        return tasks

    # ------------------------------------------------------------------
    # Dispatch
    # ------------------------------------------------------------------

    def _next_task(self) \
            -> tuple[TenantState, PointTask | CohortTask] | None:
        """Strict round-robin: the first tenant (in rotation order) with
        queued work and quota headroom; the rotation advances past every
        tenant inspected, so service alternates under contention.

        A cohort at the head of a tenant's queue counts its full lane
        width against the quota; a cohort wider than the quota itself is
        only dispatched when the tenant has nothing else in flight
        (otherwise it could never run at all)."""
        for _ in range(len(self._rr)):
            name = self._rr[0]
            self._rr.rotate(-1)
            tenant = self.tenants[name]
            if not tenant.queue:
                continue
            width = tenant.queue[0].width
            if tenant.inflight and \
                    tenant.inflight + width > tenant.quota:
                self._counter(name, "quota_deferred").inc()
                continue
            return tenant, tenant.queue.popleft()
        return None

    def _has_runnable(self) -> bool:
        return any(t.queue and (not t.inflight or
                                t.inflight + t.queue[0].width <= t.quota)
                   for t in self.tenants.values())

    async def _dispatch_loop(self) -> None:
        while True:
            picked = self._next_task()
            if picked is None:
                quota_blocked = any(t.queue for t in self.tenants.values())
                if quota_blocked:
                    self.metrics.counter("service.quota_waits").inc()
                self._wakeup.clear()
                await self._wakeup.wait()
                continue
            tenant, task = picked
            tenant.inflight += task.width
            if isinstance(task, CohortTask):
                runner = asyncio.create_task(
                    self._run_cohort(tenant, task))
            else:
                runner = asyncio.create_task(
                    self._run_point(tenant, task))
            self._point_tasks.add(runner)
            runner.add_done_callback(self._point_tasks.discard)

    # ------------------------------------------------------------------
    # Point execution
    # ------------------------------------------------------------------

    async def _run_point(self, tenant: TenantState,
                         task: PointTask) -> None:
        try:
            self._record_queue_wait(tenant, task)
            payload, source, wall, error = await self._resolve(tenant, task)
            await self._finish_point(tenant, task, payload, source, wall,
                                     error)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — never kill the loop
            await self._finish_point(tenant, task, None, "fail", 0.0,
                                     f"internal: {exc!r}")
        finally:
            tenant.inflight -= 1
            self._wakeup.set()

    async def _run_cohort(self, tenant: TenantState,
                          task: CohortTask) -> None:
        """Run one lockstep cohort: cache-probe every lane, batch the
        misses through one worker, and on any failure split the cohort
        back into scalar singletons at the front of the tenant's queue."""
        loop = asyncio.get_running_loop()
        lanes: list[PointTask] = []           # cache misses, in lane order
        try:
            self._record_queue_wait(tenant, task)
            for index, point, digest in zip(task.indices, task.points,
                                            task.digests):
                lane = PointTask(job=task.job, index=index, point=point,
                                 digest=digest)
                payload = None
                if self.cache is not None:
                    payload = await loop.run_in_executor(
                        None, self.cache.get, digest)
                if payload is not None:
                    self._counter(tenant.name, "cache_hits").inc()
                    await self._finish_point(tenant, lane, payload, "hit",
                                             0.0, None)
                else:
                    lanes.append(lane)
            if not lanes:
                return
            await self._simulate_cohort(tenant, task, lanes)
        except asyncio.CancelledError:
            raise
        except Exception as exc:  # noqa: BLE001 — never kill the loop
            self._split_cohort(tenant, lanes, f"internal: {exc!r}")
        finally:
            tenant.inflight -= task.width
            self._wakeup.set()

    async def _simulate_cohort(self, tenant: TenantState, task: CohortTask,
                               lanes: list[PointTask]) -> None:
        loop = asyncio.get_running_loop()
        # Lead the single-flight for every lane not already claimed —
        # followers of another leader are simply simulated again here
        # (bit-exact, so the duplicate is harmless).
        flights: dict[str, asyncio.Future] = {}
        for lane in lanes:
            if lane.digest not in self._inflight_digests:
                flight = loop.create_future()
                flights[lane.digest] = flight
                self._inflight_digests[lane.digest] = flight
        generation = self._pool_generation
        timeout = (self.timeout * len(lanes)
                   if self.timeout is not None else None)
        for lane in lanes:
            lane.attempts = 1
        try:
            try:
                payloads = await asyncio.wait_for(
                    loop.run_in_executor(
                        self._pool, run_cohort_payloads,
                        [lane.point for lane in lanes], self.sanitize,
                        None),
                    timeout=timeout)
            except asyncio.TimeoutError:
                self.metrics.counter("service.timeouts").inc()
                self._counter(tenant.name, "timeouts").inc()
                await self._reset_pool(generation)
                self._split_cohort(
                    tenant, lanes,
                    f"cohort deadline exceeded ({timeout}s)")
                return
            except asyncio.CancelledError:
                if self._closed or generation == self._pool_generation:
                    raise
                self._split_cohort(tenant, lanes, "pool reset")
                return
            except BrokenExecutor as exc:
                await self._reset_pool(generation)
                self._split_cohort(tenant, lanes, repr(exc))
                return
            except Exception as exc:  # noqa: BLE001 — worker raised
                self._split_cohort(tenant, lanes, repr(exc))
                return
            for lane, payload in zip(lanes, payloads):
                payload.pop("worker", None)   # pids are not deterministic
                self._counter(tenant.name, "simulated").inc()
                self.metrics.counter("service.simulated").inc()
                wall = payload.get("wall_clock", 0.0)
                self.metrics.histogram("service.sim_seconds").add(wall)
                self._lane_metrics(payload, wall)
                if self.cache is not None:
                    await loop.run_in_executor(
                        None, self.cache.put, lane.digest, payload,
                        {"point": lane.point.name})
                flight = flights.get(lane.digest)
                if flight is not None and not flight.done():
                    flight.set_result(payload)
                await self._finish_point(tenant, lane, payload, "sim",
                                         wall, None)
        finally:
            for digest, flight in flights.items():
                if self._inflight_digests.get(digest) is flight:
                    self._inflight_digests.pop(digest, None)
                if not flight.done():
                    # The cohort never produced this lane's payload (it
                    # split); followers fail with the leader, exactly as
                    # a failed scalar leader behaves.
                    flight.cancel()

    def _split_cohort(self, tenant: TenantState, lanes: list[PointTask],
                      error: str) -> None:
        """Requeue failed cohort lanes as scalar singletons (front of the
        tenant's queue, fresh attempt budgets — the cohort's failure is
        not any one lane's failure)."""
        self.metrics.counter("service.cohort_splits").inc()
        for lane in reversed(lanes):
            lane.attempts = 0
            tenant.queue.appendleft(lane)

    async def _resolve(self, tenant: TenantState, task: PointTask):
        """(payload, source, wall_clock, error) for one point, through
        cache probe -> single-flight join -> pool simulation."""
        loop = asyncio.get_running_loop()
        if self.cache is not None:
            probe_start = time.time()
            payload = await loop.run_in_executor(None, self.cache.get,
                                                 task.digest)
            self._span(task, "cache-probe", probe_start)
            if payload is not None:
                self._counter(tenant.name, "cache_hits").inc()
                return payload, "hit", 0.0, None

        leader = self._inflight_digests.get(task.digest)
        if leader is not None:
            # Another tenant (or campaign) is already simulating this
            # exact point: join it instead of burning a second slot.
            self._counter(tenant.name, "deduped").inc()
            self.metrics.counter("service.single_flight_dedup").inc()
            join_start = time.time()
            try:
                payload = await asyncio.shield(leader)
            except Exception as exc:  # noqa: BLE001 — leader failed
                return None, "fail", 0.0, f"single-flight leader: {exc!r}"
            self._span(task, "dedup-join", join_start)
            return payload, "dedup", 0.0, None

        flight: asyncio.Future = loop.create_future()
        self._inflight_digests[task.digest] = flight
        try:
            sim_start = time.time()
            payload, wall, error = await self._simulate(tenant, task)
            if payload is not None:
                self._span(task, "simulate", sim_start)
                if self.cache is not None:
                    put_start = time.time()
                    await loop.run_in_executor(
                        None, self.cache.put, task.digest, payload,
                        {"point": task.point.name})
                    self._span(task, "cache-put", put_start)
                flight.set_result(payload)
                return payload, "sim", wall, None
            flight.set_exception(RuntimeError(error or "failed"))
            return None, "fail", wall, error
        finally:
            self._inflight_digests.pop(task.digest, None)
            if not flight.done():
                flight.cancel()               # cancelled mid-simulation
            elif not flight.cancelled():
                flight.exception()            # mark retrieved; no GC warning

    async def _simulate(self, tenant: TenantState, task: PointTask):
        """Run the point on the pool with deadline + bounded retries."""
        loop = asyncio.get_running_loop()
        trace_ctx = None
        if self.trace_dir is not None:
            # The worker stamps this context into its kernel trace as a
            # `trace-context` instant; `repro.observe stitch` matches it
            # against the scheduler manifest to merge both processes
            # into one per-campaign Perfetto trace.
            trace_ctx = {"trace_id": task.job.id,
                         "span_id": f"{task.job.id}/{task.index}"}
        while True:
            task.attempts += 1
            generation = self._pool_generation
            start = time.perf_counter()
            try:
                payload = await asyncio.wait_for(
                    loop.run_in_executor(self._pool, run_point_payload,
                                         task.point, self.sanitize,
                                         self.trace_dir, trace_ctx),
                    timeout=self.timeout)
            except asyncio.TimeoutError:
                self.metrics.counter("service.timeouts").inc()
                self._counter(tenant.name, "timeouts").inc()
                if self._slog is not None:
                    self._slog.emit("point.timeout", campaign=task.job.id,
                                    tenant=tenant.name,
                                    point=task.point.name,
                                    timeout=self.timeout)
                # The worker is wedged past its deadline: kill the fleet
                # generation it runs in so the slot comes back.
                await self._reset_pool(generation)
                error = f"deadline exceeded ({self.timeout}s)"
            except BrokenExecutor:
                # Pool died underneath us (another point's kill, worker
                # OOM). Not this point's fault: bounce, don't charge.
                await self._reset_pool(generation)
                task.attempts -= 1
                task.bounces += 1
                if task.bounces <= POOL_BOUNCE_BUDGET:
                    continue
                error = "worker fleet kept dying (pool bounce budget)"
                task.attempts += 1
            except asyncio.CancelledError:
                # A pool reset cancels submissions still queued on the
                # old executor; that surfaces here as CancelledError.
                # Distinguish it from real task cancellation by the
                # generation bump and bounce like a BrokenExecutor.
                if self._closed or generation == self._pool_generation:
                    raise
                task.attempts -= 1
                task.bounces += 1
                if task.bounces <= POOL_BOUNCE_BUDGET:
                    continue
                error = "worker fleet kept dying (pool bounce budget)"
                task.attempts += 1
            except Exception as exc:  # noqa: BLE001 — worker raised
                error = repr(exc)
            else:
                payload.pop("worker", None)   # pids are not deterministic
                self._counter(tenant.name, "simulated").inc()
                self.metrics.counter("service.simulated").inc()
                wall = payload.get("wall_clock",
                                   time.perf_counter() - start)
                self.metrics.histogram("service.sim_seconds").add(wall)
                self._lane_metrics(payload, wall)
                return payload, wall, None
            if task.attempts <= self.retries:
                self._counter(tenant.name, "retries").inc()
                continue
            self._counter(tenant.name, "failures").inc()
            return None, time.perf_counter() - start, error

    async def _reset_pool(self, generation: int) -> None:
        """Kill and replace the worker fleet (once per generation — many
        tasks observing the same death reset it only once)."""
        async with self._pool_lock:
            if generation != self._pool_generation:
                return                        # a sibling already reset it
            pool = self._pool
            for process in getattr(pool, "_processes", {}).values():
                try:
                    process.terminate()
                except OSError:  # pragma: no cover — already reaped
                    pass
            pool.shutdown(wait=False, cancel_futures=True)
            self._pool = self._make_pool()
            self._pool_generation += 1
            self.metrics.counter("service.pool_resets").inc()
            if self._slog is not None:
                self._slog.emit("pool.reset",
                                generation=self._pool_generation,
                                workers=self.workers)

    async def _finish_point(self, tenant: TenantState, task: PointTask,
                            payload: dict[str, Any] | None, source: str,
                            wall: float, error: str | None) -> None:
        job = task.job
        outcome = {
            "index": task.index,
            "point": task.point.name,
            "ok": payload is not None,
            "source": source,                 # hit | sim | dedup | fail
            "wall_clock": wall,
            "attempts": task.attempts,
            "error": error,
        }
        if payload is not None:
            job.payloads[task.index] = payload
            outcome["cycles"] = payload.get("cycles", 0.0)
            outcome["instructions"] = payload.get("instructions", 0)
        job.outcomes[task.index] = outcome
        self.metrics.histogram(
            f"tenant.{tenant.name}.point_seconds").add(wall)
        if task.spans is not None:
            job.sched_spans[task.index] = task.spans
        if self._slog is not None:
            self._slog.emit("point.done", campaign=job.id,
                            tenant=job.tenant, point=task.point.name,
                            index=task.index, source=source, wall=wall,
                            attempts=task.attempts, error=error)
        job.done += 1
        if source == "hit":
            job.hits += 1
        elif source == "sim":
            job.simulated += 1
        elif source == "dedup":
            job.deduped += 1
        if payload is None:
            job.failures += 1
        self._counter(tenant.name, "done_points").inc()
        if job.done == job.total:
            job.state = "failed" if job.failures else "done"
            job.finished_at = time.time()
        await job.record({"type": "point", "campaign": job.id,
                          "tenant": job.tenant, "done": job.done,
                          "total": job.total, **outcome})
        if job.done == job.total:
            if self._slog is not None:
                self._slog.emit("campaign.done", campaign=job.id,
                                tenant=job.tenant, state=job.state,
                                cache_hits=job.hits,
                                simulated=job.simulated,
                                deduped=job.deduped,
                                failures=job.failures)
            if self.trace_dir is not None:
                self._write_stitch_manifest(job)
            await job.record({"type": "campaign", "campaign": job.id,
                              "tenant": job.tenant, "state": job.state,
                              **{k: job.to_dict()[k] for k in
                                 ("cache_hits", "simulated", "deduped",
                                  "failures")}})
            job.finished.set()

    def _write_stitch_manifest(self, job: CampaignJob) -> None:
        """Scheduler-side half of the stitched campaign trace: which
        points ran, their span IDs, their scheduler spans, and (for
        simulated points) which worker trace file carries the kernel
        side. ``repro.observe stitch`` joins the two on span_id."""
        import json
        import pathlib

        from repro.observe.stitch import MANIFEST_SCHEMA, manifest_path

        points = []
        for index, point in enumerate(job.points):
            outcome = job.outcomes[index] or {}
            source = outcome.get("source", "fail")
            points.append({
                "index": index,
                "point": point.name,
                "span_id": f"{job.id}/{index}",
                "source": source,
                "trace_file": (point_trace_filename(point)
                               if source == "sim" else None),
                "spans": job.sched_spans.get(index, []),
            })
        manifest = {
            "schema": MANIFEST_SCHEMA,
            "campaign": job.id,
            "tenant": job.tenant,
            "created_at": job.created_at,
            "trace_id": job.id,
            "points": points,
        }
        try:
            root = pathlib.Path(self.trace_dir)
            root.mkdir(parents=True, exist_ok=True)
            manifest_path(root, job.id).write_text(
                json.dumps(manifest, indent=2) + "\n")
        except OSError:
            # Losing a manifest must never fail the campaign itself.
            if self._slog is not None:
                self._slog.emit("stitch.manifest_error", campaign=job.id,
                                trace_dir=self.trace_dir)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------

    def drop(self, job_id: str) -> bool:
        """Forget a *finished* campaign (frees its retained payloads)."""
        job = self.jobs.get(job_id)
        if job is None or not job.finished.is_set():
            return False
        del self.jobs[job_id]
        return True

    def job_results(self, job: CampaignJob,
                    include_stats: bool = False) -> dict[str, Any]:
        """Full results document for one campaign: per-point outcomes,
        the sweep summary when the submission named one, and (on request)
        the raw worker payloads so a client can rebuild bit-exact stats."""
        out: dict[str, Any] = {"campaign": job.to_dict(),
                               "points": job.outcomes}
        sweep = job.meta.get("sweep")
        if sweep is not None and job.finished.is_set() \
                and not job.failures:
            out["summary"] = self._summarize(job, sweep)
        if include_stats:
            out["payloads"] = {str(index): payload for index, payload
                               in sorted(job.payloads.items())}
        return out

    def _summarize(self, job: CampaignJob, sweep: str) \
            -> list[dict[str, Any]] | None:
        from repro.orchestrator.campaigns import (
            summarize_sweep,
            sweep_spec,
        )
        from repro.orchestrator.serialize import stats_from_payload

        class _Row:
            def __init__(self, point, payload):
                self.point = point
                self.stats = stats_from_payload(payload)
                self.error = None

        try:
            spec = sweep_spec(sweep,
                              apps=job.meta.get("apps") or None,
                              length=job.meta.get("length") or None)
            rows = [_Row(point, job.payloads[index])
                    for index, point in enumerate(job.points)]
            return [{"label": label, "gmean_slowdown": mean}
                    for label, mean in summarize_sweep(spec, rows)]
        except (ValueError, KeyError, RuntimeError):
            return None               # not a stock sweep shape; no summary

    def cache_inventory(self) -> dict[str, Any] | None:
        """Disk-cache breakdown (entry/byte totals, per-engine entry
        counts, stale-schema orphans) for status and /metrics, cached
        for :data:`CACHE_INVENTORY_TTL` so scrapes don't rescan disk."""
        if self.cache is None:
            return None
        now = time.monotonic()
        if self._inventory is not None and now < self._inventory[0]:
            return self._inventory[1]
        info = self.cache.inventory()
        snapshot = {
            "entries": info["entries"],
            "bytes": info["bytes"],
            "engines": info["engines"],
            "stale_schema": info["stale_schema"],
            "tmp_orphans": info["tmp_orphans"],
            "sim_seconds": info["sim_seconds"],
        }
        self._inventory = (now + self.CACHE_INVENTORY_TTL, snapshot)
        return snapshot

    def status(self) -> dict[str, Any]:
        jobs = sorted(self.jobs.values(), key=lambda j: j.id)
        return {
            "uptime": time.time() - self.started_at,
            "workers": self.workers,
            "pool_generation": self._pool_generation,
            "timeout": self.timeout,
            "retries": self.retries,
            "sanitize": self.sanitize,
            "engine": self.engine,
            "heartbeat": self.heartbeat,
            "trace_dir": self.trace_dir,
            "cache_root": (str(self.cache.root)
                           if self.cache is not None else None),
            "cache_counters": ({"hits": self.cache.counters.hits,
                                "misses": self.cache.counters.misses}
                               if self.cache is not None else None),
            "cache_inventory": self.cache_inventory(),
            "tenants": [t.to_dict() for t in self.tenants.values()],
            "campaigns": [j.to_dict() for j in jobs],
            "metrics": self.metrics.to_dict(),
        }
