"""The campaign service: a long-lived multi-tenant simulation daemon.

``repro.service`` promotes the single-shot :class:`repro.orchestrator
.Campaign` into an asyncio daemon: many tenants submit campaigns
concurrently over a local-socket (or localhost TCP) HTTP/JSON API, a fair
round-robin scheduler multiplexes their points over one shared
process-pool worker fleet under per-tenant quotas, per-point progress
streams back as events, and the content-addressed ``.simcache`` fronts it
all as a concurrency-safe L2 with single-flight deduplication — two
tenants asking for the same point trigger exactly one simulation.

Entry points::

    python -m repro.service serve --workers 4          # run the daemon
    python -m repro.service submit fig16 --tenant a --wait
    python -m repro.service status

or programmatically via :class:`repro.service.client.ServiceClient` and
:func:`repro.service.server.serve_background` (tests, embedding).
"""

from repro.service.scheduler import CampaignJob, FleetScheduler, TenantState
from repro.service.server import ServiceServer, serve_background
from repro.service.client import ServiceClient, default_socket_path

__all__ = [
    "CampaignJob",
    "FleetScheduler",
    "TenantState",
    "ServiceServer",
    "ServiceClient",
    "default_socket_path",
    "serve_background",
]
