"""Synchronous client for the campaign service.

Stdlib-only: raw sockets speaking the daemon's one-request-per-connection
HTTP/1.1 dialect, over a Unix domain socket or localhost TCP. Streaming
endpoints (``.../events``) yield decoded NDJSON objects until the server
closes the connection.
"""

from __future__ import annotations

import json
import os
import socket
import tempfile
import time
from typing import Any, Iterator

ENV_SERVICE_SOCKET = "REPRO_SERVICE_SOCKET"


def default_socket_path() -> str:
    """``$REPRO_SERVICE_SOCKET`` if set, else a per-user path under the
    system temp dir (kept short: Unix socket paths cap at ~100 chars)."""
    env = os.environ.get(ENV_SERVICE_SOCKET)
    if env:
        return env
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return os.path.join(tempfile.gettempdir(), f"repro-service-{uid}.sock")


class ServiceError(RuntimeError):
    """The daemon answered with an error status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(f"HTTP {status}: {message}")
        self.status = status


class ServiceClient:
    """Talk to one campaign daemon."""

    def __init__(self, socket_path: str | None = None,
                 host: str = "127.0.0.1", port: int | None = None,
                 timeout: float = 300.0) -> None:
        if socket_path is None and port is None:
            socket_path = default_socket_path()
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout

    # ------------------------------------------------------------------
    # Transport
    # ------------------------------------------------------------------

    def _connect(self) -> socket.socket:
        if self.socket_path is not None:
            sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
            sock.settimeout(self.timeout)
            sock.connect(self.socket_path)
        else:
            sock = socket.create_connection((self.host, self.port),
                                            timeout=self.timeout)
        return sock

    def _send(self, sock: socket.socket, method: str, path: str,
              body: dict[str, Any] | None) -> None:
        payload = b""
        if body is not None:
            payload = json.dumps(body, allow_nan=False).encode()
        host = self.host if self.socket_path is None else "localhost"
        request = (f"{method} {path} HTTP/1.1\r\n"
                   f"Host: {host}\r\n"
                   f"Content-Type: application/json\r\n"
                   f"Content-Length: {len(payload)}\r\n"
                   f"Connection: close\r\n\r\n").encode() + payload
        sock.sendall(request)

    @staticmethod
    def _read_head(handle) -> tuple[int, dict[str, str]]:
        status_line = handle.readline().decode("latin-1").strip()
        if not status_line.startswith("HTTP/"):
            raise ServiceError(0, f"bad status line {status_line!r}")
        status = int(status_line.split(" ", 2)[1])
        headers: dict[str, str] = {}
        while True:
            line = handle.readline().decode("latin-1").strip()
            if not line:
                break
            name, _, value = line.partition(":")
            headers[name.strip().lower()] = value.strip()
        return status, headers

    def request(self, method: str, path: str,
                body: dict[str, Any] | None = None) -> dict[str, Any]:
        """One round trip; raises :class:`ServiceError` on 4xx/5xx."""
        with self._connect() as sock:
            self._send(sock, method, path, body)
            with sock.makefile("rb") as handle:
                status, headers = self._read_head(handle)
                length = int(headers.get("content-length", 0))
                raw = handle.read(length) if length else handle.read()
                document = json.loads(raw) if raw else {}
        if status >= 400:
            raise ServiceError(status,
                               document.get("error", "unknown error"))
        return document

    def stream(self, path: str) -> Iterator[dict[str, Any]]:
        """Yield NDJSON objects from a streaming endpoint until EOF."""
        with self._connect() as sock:
            self._send(sock, "GET", path, None)
            with sock.makefile("rb") as handle:
                status, _headers = self._read_head(handle)
                if status >= 400:
                    raw = handle.read()
                    message = "stream refused"
                    if raw:
                        try:
                            message = json.loads(raw).get("error", message)
                        except ValueError:
                            pass
                    raise ServiceError(status, message)
                for line in handle:
                    line = line.strip()
                    if line:
                        yield json.loads(line)

    # ------------------------------------------------------------------
    # API surface
    # ------------------------------------------------------------------

    def healthz(self) -> dict[str, Any]:
        return self.request("GET", "/healthz")

    def status(self) -> dict[str, Any]:
        return self.request("GET", "/v1/status")

    def metrics(self) -> str:
        """Raw Prometheus text exposition from ``GET /metrics`` (the one
        non-JSON endpoint, so it bypasses :meth:`request`)."""
        with self._connect() as sock:
            self._send(sock, "GET", "/metrics", None)
            with sock.makefile("rb") as handle:
                status, headers = self._read_head(handle)
                length = int(headers.get("content-length", 0))
                raw = handle.read(length) if length else handle.read()
        if status >= 400:
            raise ServiceError(status, raw.decode("utf-8",
                                                  "replace") or "error")
        return raw.decode("utf-8")

    def submit(self, tenant: str, sweep: str | None = None,
               apps: list[str] | None = None, length: int | None = None,
               matrix: dict[str, Any] | None = None,
               points: list[dict[str, Any]] | None = None,
               quota: int | None = None,
               label: str | None = None) -> dict[str, Any]:
        body: dict[str, Any] = {"tenant": tenant}
        if sweep is not None:
            body["sweep"] = sweep
        if apps is not None:
            body["apps"] = list(apps)
        if length is not None:
            body["length"] = length
        if matrix is not None:
            body["matrix"] = matrix
        if points is not None:
            body["points"] = points
        if quota is not None:
            body["quota"] = quota
        if label is not None:
            body["label"] = label
        return self.request("POST", "/v1/campaigns", body)

    def campaign(self, job_id: str) -> dict[str, Any]:
        return self.request("GET", f"/v1/campaigns/{job_id}")

    def results(self, job_id: str,
                include_stats: bool = False) -> dict[str, Any]:
        suffix = "?stats=1" if include_stats else ""
        return self.request("GET", f"/v1/campaigns/{job_id}/results"
                            + suffix)

    def events(self, job_id: str) -> Iterator[dict[str, Any]]:
        return self.stream(f"/v1/campaigns/{job_id}/events")

    def drop(self, job_id: str) -> dict[str, Any]:
        return self.request("DELETE", f"/v1/campaigns/{job_id}")

    def shutdown(self) -> dict[str, Any]:
        return self.request("POST", "/v1/shutdown")

    def wait(self, job_id: str, timeout: float | None = None) \
            -> dict[str, Any]:
        """Block until the campaign finishes (following its event stream);
        returns the final campaign snapshot."""
        deadline = None if timeout is None else time.monotonic() + timeout
        for event in self.events(job_id):
            if deadline is not None and time.monotonic() > deadline:
                raise TimeoutError(f"campaign {job_id} still running "
                                   f"after {timeout}s")
            if event.get("type") == "campaign":
                break
        return self.campaign(job_id)
