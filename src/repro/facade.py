"""The unified run API: one call simulates any core under any scheme.

The legacy entry points — :meth:`repro.core.processor.PersistentProcessor.run`,
:meth:`repro.inorder.processor.InOrderPersistentProcessor.run`, and
:meth:`repro.multicore.system.MulticoreSystem.run_profile` — remain as thin
delegates, but new code should call :func:`simulate`:

>>> result = repro.simulate("gcc", scheme="ppa", trace=True)
>>> result.stats.ipc
>>> result.write_chrome_trace("gcc-ppa.json")      # open in Perfetto
>>> crash = result.crash_api.crash_at(result.stats.cycles / 2)

``trace=True`` attaches a fresh :class:`repro.telemetry.Tracer` for this
run only (``REPRO_TRACE=1`` and an ambient ``tracing()`` context also
work); ``trace=False`` leaves the zero-overhead fast path untouched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.config import SystemConfig, skylake_default
from repro.isa.trace import Trace
from repro.statsbase import StatsBase
from repro.workloads.profiles import WorkloadProfile, profile_by_name

CORES = ("ooo", "inorder", "multicore")


@dataclass
class SimResult:
    """What one :func:`simulate` call produces.

    ``stats`` is the run's :class:`repro.statsbase.StatsBase` object
    (:class:`CoreStats`, :class:`InOrderStats`, or
    :class:`MulticoreStats`); ``telemetry`` is the run's tracer (or
    ``None`` when tracing was off); ``crash_api`` exposes the
    crash/recover life cycle when the core/scheme combination supports
    power-failure injection (``None`` otherwise).
    """

    stats: StatsBase
    telemetry: Any = None
    crash_api: Any = None

    def write_chrome_trace(self, path) -> None:
        """Export the run's events as a Perfetto-loadable Chrome trace."""
        from repro.telemetry.export import write_chrome_trace

        self._require_telemetry()
        write_chrome_trace(self.telemetry, path)

    def write_jsonl(self, path) -> None:
        """Export the run's events as flat JSONL."""
        from repro.telemetry.export import write_jsonl

        self._require_telemetry()
        write_jsonl(self.telemetry, path)

    def _require_telemetry(self) -> None:
        if self.telemetry is None:
            raise RuntimeError(
                "this run was not traced; pass trace=True to simulate() "
                "or set REPRO_TRACE=1")


def _resolve_profile(spec) -> tuple[WorkloadProfile | None, Trace | None]:
    """``simulate`` accepts a profile, a profile name, or a ready trace."""
    if isinstance(spec, Trace):
        return None, spec
    if isinstance(spec, WorkloadProfile):
        return spec, None
    if isinstance(spec, str):
        return profile_by_name(spec), None
    raise TypeError(
        f"expected a Trace, WorkloadProfile, or profile name; "
        f"got {type(spec).__name__}")


def _scheme_config(config: SystemConfig | None, scheme: str) -> SystemConfig:
    from dataclasses import replace

    from repro.persistence.catalog import scheme_backend

    if config is None:
        config = skylake_default()
    backend = scheme_backend(scheme)
    if config.memory.backend != backend:
        config = replace(config, memory=replace(config.memory,
                                                backend=backend))
    return config


def _run_ooo(profile, run_trace, scheme, config, length, warmup,
             seed, engine) -> SimResult:
    from repro.memory.hierarchy import MemorySystem
    from repro.persistence.catalog import make_policy
    from repro.pipeline.core import OoOCore

    if engine == "batched" and run_trace is None and scheme != "ppa":
        # A profile run with no crash API can go through the batched
        # kernel; ``ppa`` stays scalar here because ``result.crash_api``
        # needs the value-tracking PersistentProcessor. (The kernel
        # double-checks scheme compatibility and runtime guards itself.)
        from repro.engine import runtime_scalar_reason
        from repro.orchestrator.execute import simulate_point
        from repro.orchestrator.points import make_point

        if runtime_scalar_reason() is None:
            # track_values=True matches the facade's scalar path, which
            # runs OoOCore with its value-tracking default — the stats
            # (store values included) must not depend on the engine.
            point = make_point(profile=profile, scheme=scheme,
                               config=config, length=length, warmup=warmup,
                               seed=seed, track_values=True)
            stats, _ = simulate_point(point, engine="batched")
            return SimResult(stats=stats, telemetry=None, crash_api=None)
    if run_trace is None:
        # Profile runs intern the generated trace and clone prewarmed
        # cache state from a shared template — both deterministic, so
        # repeated runs are bit-identical to cold ones.
        from repro.memory.prewarm import warmed_memory
        from repro.workloads.interning import interned_trace, region_extents

        run_trace = interned_trace(profile, length, seed=seed)
        if warmup > 0:
            memory = warmed_memory(config.memory, region_extents(profile))
        else:
            memory = MemorySystem(config.memory)
    else:
        memory = MemorySystem(config.memory)
    if scheme == "ppa":
        # The full life cycle (run / crash_at / recover) needs the
        # value-tracking PPA processor.
        from repro.core.processor import PersistentProcessor

        proc = PersistentProcessor(config, memory=memory)
        stats = proc._run(run_trace)
        return SimResult(stats=stats, telemetry=proc.tracer,
                         crash_api=proc)
    core = OoOCore(config, make_policy(scheme), memory=memory)
    stats = core._run(run_trace)
    return SimResult(stats=stats, telemetry=core.tracer, crash_api=None)


def _run_inorder(profile, run_trace, scheme, config, length,
                 seed, engine) -> SimResult:
    from repro.workloads.interning import interned_trace

    if engine == "batched" and run_trace is None and scheme == "baseline":
        # A profile run can go through the batched in-order lane kernel;
        # ``ppa`` stays scalar here because ``result.crash_api`` needs
        # the value-CSQ processor.
        from repro.engine import runtime_scalar_reason
        from repro.orchestrator.execute import simulate_point
        from repro.orchestrator.points import make_point

        if runtime_scalar_reason() is None:
            point = make_point(profile=profile, scheme=scheme,
                               config=config, length=length, warmup=0,
                               seed=seed, core="inorder")
            stats, _ = simulate_point(point, engine="batched")
            return SimResult(stats=stats, telemetry=None, crash_api=None)
    if run_trace is None:
        run_trace = interned_trace(profile, length, seed=seed)
    if scheme == "ppa":
        from repro.inorder.processor import InOrderPersistentProcessor

        proc = InOrderPersistentProcessor(config)
        stats = proc._run(run_trace)
        return SimResult(stats=stats, telemetry=proc.core.tracer,
                         crash_api=proc)
    if scheme == "baseline":
        from repro.inorder.core import InOrderCore

        core = InOrderCore(config, persistent=False)
        stats = core._run(run_trace)
        return SimResult(stats=stats, telemetry=core.tracer,
                         crash_api=None)
    raise ValueError(
        f"the in-order core supports scheme 'ppa' or 'baseline', "
        f"not {scheme!r}")


def _run_multicore(profile, scheme, config, length, warmup, seed,
                   threads) -> SimResult:
    from repro.multicore.system import MulticoreSystem

    system = MulticoreSystem(config, scheme, threads=threads)
    stats = system.run_profile(profile, length=length, warmup=warmup,
                               seed=seed)
    return SimResult(stats=stats, telemetry=system.tracer, crash_api=None)


def simulate(trace_or_profile, *, scheme: str = "ppa", core: str = "ooo",
             config: SystemConfig | None = None, trace: bool = False,
             length: int = 20_000, warmup: int = 1, seed: int = 0,
             threads: int = 8, engine: str | None = None) -> SimResult:
    """Simulate one workload on one core model under one scheme.

    ``trace_or_profile`` is a :class:`~repro.isa.trace.Trace`, a
    :class:`~repro.workloads.profiles.WorkloadProfile`, or a profile name
    (``"gcc"``). ``core`` selects the model — ``"ooo"`` (Section 4),
    ``"inorder"`` (Section 6's value-CSQ variant, schemes ``ppa`` and
    ``baseline`` only), or ``"multicore"`` (Section 7.11, profile input
    only). ``trace=True`` records cycle-level telemetry into
    ``result.telemetry`` without touching the configured environment.

    ``engine`` follows the :mod:`repro.engine` contract (``None`` resolves
    ``REPRO_ENGINE``, default ``"auto"``): a single facade call batches
    only under ``engine="batched"`` — ``"auto"`` batches cohorts of >= 2
    points, which exist on the campaign paths. Batched runs return stats
    only (no telemetry, no crash API), bit-exact with the scalar kernel.
    That covers ``baseline``/``eadr``/``dram-only``/``capri`` on the
    out-of-order core and ``baseline`` on the in-order core; combinations
    that need the value-tracking processors for ``result.crash_api``
    (``ppa`` on either core), the multicore model, and raw ``Trace``
    input run scalar regardless.
    """
    if core not in CORES:
        raise ValueError(f"unknown core {core!r}; options: {list(CORES)}")
    from repro.engine import resolve_engine

    engine = resolve_engine(engine)
    profile, run_trace = _resolve_profile(trace_or_profile)
    if core == "multicore" and profile is None:
        raise ValueError(
            "the multicore system generates per-thread traces itself; "
            "pass a profile (or profile name), not a Trace")
    config = _scheme_config(config, scheme)

    if trace:
        from repro.telemetry import Tracer, tracing

        with tracing(Tracer()):
            return _dispatch(profile, run_trace, scheme, core, config,
                             length, warmup, seed, threads, engine)
    return _dispatch(profile, run_trace, scheme, core, config, length,
                     warmup, seed, threads, engine)


def _dispatch(profile, run_trace, scheme, core, config, length, warmup,
              seed, threads, engine) -> SimResult:
    if core == "ooo":
        return _run_ooo(profile, run_trace, scheme, config, length,
                        warmup, seed, engine)
    if core == "inorder":
        return _run_inorder(profile, run_trace, scheme, config, length,
                            seed, engine)
    return _run_multicore(profile, scheme, config, length, warmup, seed,
                          threads)
