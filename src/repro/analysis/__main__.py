"""Reproduction digest CLI.

Reads the rendered experiment results under ``benchmarks/results/`` (as
written by ``pytest benchmarks/ --benchmark-only``) and grades them against
the paper's claims::

    python -m repro.analysis [results_dir]
"""

from __future__ import annotations

import pathlib
import re
import sys

from repro.analysis.report import grade, render_digest
from repro.experiments.base import ExperimentResult

_SUMMARY = re.compile(r"^summary: (.*)$", re.MULTILINE)


def load_recorded_results(results_dir) -> dict[str, ExperimentResult]:
    """Parse the summary lines of recorded experiment renderings."""
    results: dict[str, ExperimentResult] = {}
    directory = pathlib.Path(results_dir)
    for path in sorted(directory.glob("*.txt")):
        text = path.read_text()
        match = _SUMMARY.search(text)
        summary: dict[str, float] = {}
        if match:
            for pair in match.group(1).split(", "):
                key, __, value = pair.partition("=")
                try:
                    summary[key] = float(value)
                except ValueError:
                    continue
        experiment_id = path.stem
        results[experiment_id] = ExperimentResult(
            experiment_id=experiment_id, title=experiment_id,
            columns=[], rows=[], summary=summary)
    return results


def main(argv: list[str] | None = None) -> int:
    argv = argv if argv is not None else sys.argv[1:]
    default = pathlib.Path(__file__).resolve().parents[3].parent \
        / "benchmarks" / "results"
    candidates = [pathlib.Path(argv[0])] if argv else [
        pathlib.Path("benchmarks/results"), default]
    directory = next((c for c in candidates if c.is_dir()), None)
    if directory is None:
        print("no recorded results found; run "
              "`pytest benchmarks/ --benchmark-only` first")
        return 1
    results = load_recorded_results(directory)
    if not results:
        print(f"no result files in {directory}")
        return 1
    lines = grade(results)
    print(render_digest(lines))
    return 0 if all(line.holds for line in lines) else 2


if __name__ == "__main__":
    sys.exit(main())
