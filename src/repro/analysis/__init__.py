"""Result analysis: aggregate statistics and distribution helpers."""

from repro.analysis.charts import bar_chart, series_chart
from repro.analysis.regions import (
    RegionLengthStats,
    boundary_interval_cycles,
    region_length_stats,
)
from repro.analysis.report import PAPER_EXPECTATIONS, grade, render_digest
from repro.analysis.stats import gmean, overhead_pct, suite_means
from repro.analysis.cdf import (
    cdf_from_hist,
    fraction_with_at_least,
    merge_hists,
)

__all__ = [
    "PAPER_EXPECTATIONS",
    "RegionLengthStats",
    "bar_chart",
    "boundary_interval_cycles",
    "cdf_from_hist",
    "fraction_with_at_least",
    "gmean",
    "grade",
    "merge_hists",
    "region_length_stats",
    "render_digest",
    "series_chart",
    "overhead_pct",
    "suite_means",
]
