"""Aggregate statistics used by the experiment harness."""

from __future__ import annotations

import math
from collections import defaultdict
from typing import Iterable, Mapping


def gmean(values: Iterable[float]) -> float:
    """Geometric mean (the paper's aggregate for normalized slowdowns)."""
    values = list(values)
    if not values:
        raise ValueError("gmean of no values")
    if any(v <= 0 for v in values):
        raise ValueError("gmean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def overhead_pct(slowdown: float) -> float:
    """A normalized slowdown expressed as percent overhead."""
    return 100.0 * (slowdown - 1.0)


def suite_means(per_app: Mapping[str, float],
                suites: Mapping[str, str]) -> dict[str, float]:
    """Geometric mean per benchmark suite.

    ``per_app`` maps application name to slowdown; ``suites`` maps
    application name to its suite.
    """
    grouped: dict[str, list[float]] = defaultdict(list)
    for app, value in per_app.items():
        grouped[suites[app]].append(value)
    return {suite: gmean(values) for suite, values in grouped.items()}
