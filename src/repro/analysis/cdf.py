"""Weighted-histogram and CDF helpers (Figure 5)."""

from __future__ import annotations

from collections import Counter
from typing import Iterable


def merge_hists(hists: Iterable[Counter]) -> Counter:
    """Sum weighted histograms from several runs."""
    merged: Counter = Counter()
    for hist in hists:
        merged.update(hist)
    return merged


def cdf_from_hist(hist: Counter) -> list[tuple[int, float]]:
    """Cumulative distribution (value, P[X <= value]) of a weighted hist."""
    total = sum(hist.values())
    if total <= 0:
        return []
    cdf = []
    acc = 0.0
    for value in sorted(hist):
        acc += hist[value]
        cdf.append((value, acc / total))
    return cdf


def fraction_with_at_least(hist: Counter, threshold: int) -> float:
    """P[X >= threshold] — e.g. 'for 75 % of cycles, ≥138 registers free'."""
    total = sum(hist.values())
    if total <= 0:
        return 0.0
    above = sum(weight for value, weight in hist.items()
                if value >= threshold)
    return above / total
