"""Reproduction digest: measured results against the paper's claims.

``build_digest`` runs (or accepts) experiment results and grades each
against a structured expectation — the machine-checkable core of
EXPERIMENTS.md. The same expectations drive ``python -m repro.analysis``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.experiments.base import ExperimentResult


@dataclass(frozen=True)
class Expectation:
    """One checkable claim from the paper about one experiment."""

    experiment_id: str
    claim: str
    # Receives the result's summary dict; True when the shape holds.
    check: Callable[[dict], bool]


PAPER_EXPECTATIONS: tuple[Expectation, ...] = (
    Expectation("fig1", "ReplayCache costs multiples (paper ~5x)",
                lambda s: s["gmean_slowdown"] > 3.0),
    Expectation("fig8", "PPA within a few % (paper 2%)",
                lambda s: s["ppa_gmean"] < 1.10),
    Expectation("fig8", "Capri far costlier than PPA (paper 26% vs 2%)",
                lambda s: s["capri_gmean"] > s["ppa_gmean"] + 0.05),
    Expectation("fig9", "memory mode modestly slower than DRAM-only",
                lambda s: 1.0 <= s["memory_mode_gmean"] < 1.5),
    Expectation("fig10", "ideal PSP pays a large multiple (paper 1.39x)",
                lambda s: s["psp_gmean"] > 1.2 > s["ppa_gmean"]),
    Expectation("fig11", "region-end stalls small on average",
                lambda s: s["mean_stall_pct"] < 8.0),
    Expectation("fig13", "regions hold hundreds of instructions",
                lambda s: s["mean_others"] + s["mean_stores"] > 200),
    Expectation("fig14", "deeper hierarchy stays cheap (paper ~1%)",
                lambda s: s["gmean"] < 1.10),
    Expectation("fig15", "small WPQ hurts (paper 8% at 8 entries)",
                lambda s: s["gmean_8"] >= s["gmean_16"] - 0.01),
    Expectation("fig16", "80/80 PRF hurts, default is the knee",
                lambda s: s["gmean_80_80"] > s["gmean_180_168"]),
    Expectation("fig17", "CSQ size has minimal impact",
                lambda s: max(s.values()) - min(s.values()) < 0.08),
    Expectation("fig18", "low write bandwidth hurts (paper 7% at 1GB/s)",
                lambda s: s["gmean_1.0"] > s["gmean_2.3"]),
    Expectation("fig19", "thread scaling drifts 2%..6% (paper)",
                lambda s: 1.0 <= s["gmean_t8"] <= s["gmean_t64"] + 0.01
                and s["gmean_t64"] < 1.35),
    Expectation("tab4", "PPA adds ~0.005% core area",
                lambda s: s["core_area_fraction_pct"] < 0.01),
    Expectation("sec713", "1838 B checkpoint in ~0.91us / 21.7uJ",
                lambda s: s["total_bytes"] == 1838.0
                and abs(s["total_us"] - 0.91) < 0.02),
)


@dataclass
class DigestLine:
    experiment_id: str
    claim: str
    holds: bool


def grade(results: dict[str, ExperimentResult]) -> list[DigestLine]:
    """Grade available results against every applicable expectation."""
    lines = []
    for expectation in PAPER_EXPECTATIONS:
        result = results.get(expectation.experiment_id)
        if result is None:
            continue
        try:
            holds = expectation.check(result.summary)
        except KeyError:
            holds = False
        lines.append(DigestLine(expectation.experiment_id,
                                expectation.claim, holds))
    return lines


def markdown_table(columns: list[str], rows: list[list]) -> str:
    """A GitHub-flavored markdown table (bench/fidelity reports embed
    these in PR comments and CI summaries)."""
    def render(value) -> str:
        return f"{value:.3f}" if isinstance(value, float) else str(value)

    out = ["| " + " | ".join(columns) + " |",
           "|" + "|".join("---" for _ in columns) + "|"]
    for row in rows:
        out.append("| " + " | ".join(render(v) for v in row) + " |")
    return "\n".join(out)


def render_digest_markdown(lines: list[DigestLine]) -> str:
    """Markdown form of :func:`render_digest`."""
    rows = [["✅" if line.holds else "❌", line.experiment_id, line.claim]
            for line in lines]
    passed = sum(1 for line in lines if line.holds)
    return (f"### Reproduction digest ({passed}/{len(lines)})\n\n"
            + markdown_table(["", "exp", "claim"], rows))


def render_digest(lines: list[DigestLine]) -> str:
    """Human-readable digest table."""
    out = ["reproduction digest (claim -> holds?)", "-" * 60]
    for line in lines:
        mark = "OK " if line.holds else "FAIL"
        out.append(f"[{mark}] {line.experiment_id:8s} {line.claim}")
    passed = sum(1 for line in lines if line.holds)
    out.append("-" * 60)
    out.append(f"{passed}/{len(lines)} claims hold")
    return "\n".join(out)
