"""Terminal bar charts for experiment results.

The experiments CLI renders each figure's rows as a horizontal ASCII bar
chart so the paper's plots can be eyeballed without leaving the terminal.
"""

from __future__ import annotations

from repro.experiments.base import ExperimentResult


def bar_chart(result: ExperimentResult, value_column: int = 1,
              width: int = 48, baseline: float | None = 1.0) -> str:
    """Render one numeric column of a result as horizontal bars.

    ``baseline`` anchors the bars (normalized slowdowns anchor at 1.0 so a
    bar shows the *overhead*); pass ``None`` to anchor at zero.
    """
    numeric_rows = [
        (str(row[0]), float(row[value_column]))
        for row in result.rows
        if isinstance(row[value_column], (int, float))
    ]
    if not numeric_rows:
        return "(no numeric rows)"
    anchor = baseline if baseline is not None else 0.0
    spans = [max(0.0, value - anchor) for __, value in numeric_rows]
    top = max(spans) or 1.0
    label_width = max(len(label) for label, __ in numeric_rows)
    lines = [f"{result.experiment_id}: {result.title}"]
    for (label, value), span in zip(numeric_rows, spans):
        bar = "#" * round(width * span / top)
        lines.append(f"  {label:<{label_width}s} {value:8.3f} |{bar}")
    if baseline is not None:
        lines.append(f"  (bars show value - {baseline:g})")
    return "\n".join(lines)


def series_chart(result: ExperimentResult, width: int = 48) -> str:
    """Render a sweep result (x, y) as bars keyed by the sweep value."""
    return bar_chart(result, value_column=1, width=width, baseline=1.0)
