"""Region-population analysis (the data behind Figures 13 and 17)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.pipeline.stats import CoreStats, RegionRecord


@dataclass(frozen=True)
class RegionLengthStats:
    """Distribution summary of dynamic region lengths."""

    count: int
    mean_instrs: float
    p50_instrs: float
    p90_instrs: float
    min_instrs: int
    max_instrs: int
    mean_stores: float
    causes: dict[str, int]

    @property
    def store_fraction(self) -> float:
        if self.mean_instrs <= 0:
            return 0.0
        return self.mean_stores / self.mean_instrs


def _percentile(sorted_values: list[int], fraction: float) -> float:
    if not sorted_values:
        return 0.0
    index = min(len(sorted_values) - 1,
                int(fraction * (len(sorted_values) - 1)))
    return float(sorted_values[index])


def region_length_stats(regions: list[RegionRecord]) -> RegionLengthStats:
    """Summarize a run's region population."""
    if not regions:
        return RegionLengthStats(0, 0.0, 0.0, 0.0, 0, 0, 0.0, {})
    lengths = sorted(r.instr_count for r in regions)
    causes: dict[str, int] = {}
    for region in regions:
        causes[region.cause] = causes.get(region.cause, 0) + 1
    return RegionLengthStats(
        count=len(regions),
        mean_instrs=sum(lengths) / len(lengths),
        p50_instrs=_percentile(lengths, 0.5),
        p90_instrs=_percentile(lengths, 0.9),
        min_instrs=lengths[0],
        max_instrs=lengths[-1],
        mean_stores=sum(r.store_count for r in regions) / len(regions),
        causes=causes,
    )


def boundary_interval_cycles(stats: CoreStats) -> float:
    """Mean cycles between region boundaries — how often the persist
    counter is consulted."""
    if not stats.regions or stats.cycles <= 0:
        return 0.0
    return stats.cycles / len(stats.regions)
