"""Figure 10: PPA vs an ideal PSP (eADR/BBB, app-direct mode).

Paper: for applications with high L2 miss rates, forfeiting the DRAM cache
costs the ideal PSP 1.39x on average and up to 2.4x (libquantum), while
PPA — which keeps the DRAM cache — pays only ~3 %.
"""

from repro.experiments.figures import run_fig10

LENGTH = 12_000


def test_fig10_vs_ideal_psp(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig10(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    ppa = result.summary["ppa_gmean"]
    psp = result.summary["psp_gmean"]
    # Shape: PSP pays a large multiple; PPA pays a small percentage.
    assert psp > 1.2
    assert ppa < 1.15
    assert psp > ppa
    # At least one app suffers ~2x or worse under app-direct.
    assert max(row[2] for row in result.rows) > 1.8
