"""Ablation benches for the design choices DESIGN.md calls out."""

from repro.experiments.ablations import (
    run_ablation_async,
    run_ablation_boundary,
    run_ablation_coalescing,
    run_ablation_integrity,
)

LENGTH = 8_000


def test_ablation_async_writeback(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ablation_async(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    async_mean = result.rows[0][1]
    sync_mean = result.rows[1][1]
    assert sync_mean > async_mean + 0.02


def test_ablation_coalescing(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ablation_coalescing(length=LENGTH),
        rounds=1, iterations=1)
    record_result(result)
    with_mean = result.rows[0][1]
    without_mean = result.rows[1][1]
    assert without_mean > with_mean


def test_ablation_boundary_threshold(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ablation_boundary(length=LENGTH),
        rounds=1, iterations=1)
    record_result(result)
    by_threshold = {row[0]: row[1] for row in result.rows}
    # Eager barriers (threshold 0) cost at least as much as the default.
    assert by_threshold[0] >= by_threshold[24] - 0.02


def test_ablation_store_integrity(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ablation_integrity(length=3_000, failure_points=20),
        rounds=1, iterations=1)
    record_result(result)
    on_row, off_row = result.rows
    assert on_row[1] == 0
    assert off_row[1] > 0
