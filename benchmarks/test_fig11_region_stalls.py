"""Figure 11: stall cycles at region ends as a fraction of execution.

Paper: 0.21 % on average; water-ns/water-sp stand out (6.1 %/8.1 %)
because their regions are shorter and store-denser.
"""

from repro.experiments.figures import run_fig11

LENGTH = 12_000


def test_fig11_region_end_stalls(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig11(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    by_app = {row[0]: row[1] for row in result.rows}
    # Shape: small on average...
    assert result.summary["mean_stall_pct"] < 8.0
    # ...with the water apps the clear outliers, as in the paper.
    median = sorted(by_app.values())[len(by_app) // 2]
    assert by_app["water-ns"] > 3 * median
    assert by_app["water-sp"] > 3 * median
