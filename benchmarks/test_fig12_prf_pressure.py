"""Figure 12: extra rename-stage stalls caused by PPA's PRF pressure.

Paper: masking store registers costs only 0.07 % extra out-of-register
stall cycles on average — the PRF really is underutilized enough.
"""

from repro.experiments.figures import run_fig12

LENGTH = 12_000


def test_fig12_prf_pressure(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig12(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    # Shape: the mean increase stays in the single digits of percent.
    # (Our scoreboard attributes overlapping waits to each stalled
    # instruction, so this over-counts relative to gem5's per-cycle view.)
    assert result.summary["mean_increase_pct"] < 9.0
    assert all(row[1] >= 0.0 for row in result.rows)
