"""Figure 13: average number of stores and other instructions per region.

Paper: PPA's dynamic regions average 301 other + 18 store instructions —
an order of magnitude longer than Capri's 29-instruction regions — with
bzip2/libquantum on the short side due to heavy register usage.
"""

from repro.experiments.figures import run_fig13

LENGTH = 12_000


def test_fig13_region_composition(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig13(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    mean_total = (result.summary["mean_others"]
                  + result.summary["mean_stores"])
    # Shape: hundreds of instructions per region, far beyond Capri's 29.
    assert mean_total > 200
    assert result.summary["mean_stores"] < 45
    assert result.summary["mean_others"] > \
        5 * result.summary["mean_stores"]
