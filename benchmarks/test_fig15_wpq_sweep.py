"""Figure 15: sensitivity to the NVM write-pending-queue size.

Paper: shrinking the WPQ from 16 to 8 raises PPA's overhead to ~8 %;
growing it to 24 buys little beyond the default.
"""

from repro.experiments.figures import run_fig15

LENGTH = 8_000


def test_fig15_wpq_sweep(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig15(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    assert result.summary["gmean_8"] >= result.summary["gmean_16"] - 0.01
    assert result.summary["gmean_16"] >= result.summary["gmean_24"] - 0.01
    assert result.summary["gmean_16"] < 1.15
