"""Figure 17: sensitivity to the CSQ size.

Paper: the CSQ size has minimal performance impact from 10 to 50 entries
(regions hold ~18 stores on average); 40 is chosen to make overflow rare.
"""

from repro.experiments.figures import run_fig17

LENGTH = 8_000


def test_fig17_csq_sweep(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig17(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    means = [row[1] for row in result.rows]
    # Shape: a narrow band across the sweep, mildly favouring larger CSQs.
    assert max(means) - min(means) < 0.08
    assert result.summary["gmean_40"] <= result.summary["gmean_10"] + 0.01
