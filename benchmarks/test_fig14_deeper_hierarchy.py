"""Figure 14: sensitivity to a deeper cache hierarchy (L3 + DRAM cache).

Paper: adding a shared 16 MB L3 (and shrinking L2 to a 1 MB private cache)
leaves PPA at ~1 % overhead — the long regions cover the extended
persistence path, and PPA treats the hierarchy as a black box.
"""

from repro.experiments.figures import run_fig14

LENGTH = 12_000


def test_fig14_deeper_hierarchy(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig14(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    assert 1.0 < result.summary["gmean"] < 1.10
