"""Extension experiments: the PSP landscape and the region-length law."""

from repro.experiments.extensions import (
    run_ext_inorder,
    run_ext_psp,
    run_ext_region_length,
    run_ext_sbgate,
)

LENGTH = 8_000


def test_ext_psp_landscape(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ext_psp(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    ppa = result.summary["gmean_ppa"]
    ideal = result.summary["gmean_eadr"]
    undo = result.summary["gmean_psp-undolog"]
    redo = result.summary["gmean_psp-redolog"]
    # Section 2.2's ordering: PPA < ideal PSP < software PSP.
    assert ppa < ideal < undo
    assert ppa < ideal < redo
    assert ppa < 1.10


def test_ext_sbgate_alternative(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ext_sbgate(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    # Section 6: gating retired stores in the SB throttles the pipeline.
    assert result.summary["gmean_sbgate"] > \
        result.summary["gmean_ppa"] + 0.5


def test_ext_inorder_value_csq(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ext_inorder(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    # The in-order extension keeps persistence cheap too.
    assert 1.0 <= result.summary["gmean"] < 1.20


def test_ext_region_length_law(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_ext_region_length(length=LENGTH),
        rounds=1, iterations=1)
    record_result(result)
    means = [row[1] for row in result.rows]
    # Strictly improving with region length, converging toward ~1.
    assert all(b <= a + 0.02 for a, b in zip(means, means[1:]))
    assert means[0] > 1.5       # ReplayCache-length regions are painful
    assert means[-1] < 1.06     # PPA-length regions are nearly free
