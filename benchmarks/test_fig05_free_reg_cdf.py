"""Figure 5: CDF of free integer/floating-point physical registers.

Paper: on the baseline core, ≥138 integer and ≥110 floating-point
registers are free for 75 % of CPU2006's execution cycles — the headroom
PPA's store-integrity masking lives off.
"""

from repro.experiments.figures import run_fig5

LENGTH = 10_000


def test_fig05_free_register_cdf(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig5(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    by_suite = {row[0]: row for row in result.rows}
    cpu2006 = by_suite["CPU2006"]
    # Shape: ample free registers most of the time (our core keeps more
    # definitions in flight than gem5, so the exact 138@75% point shifts;
    # the headroom PPA exploits is still the common case).
    assert cpu2006[1] > 0.5          # >=60 int free most cycles
    assert cpu2006[4] > 0.5          # >=60 fp free most cycles
    # The CDF is monotone in the threshold.
    assert cpu2006[1] >= cpu2006[2] >= cpu2006[3]
