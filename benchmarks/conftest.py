"""Benchmark-suite configuration.

Unlike the unit tests, benchmarks share the run memoizer across files: most
figures reuse the same baseline/PPA runs, and the whole suite would
otherwise re-simulate them dozens of times. On top of that in-process L1,
the suite enables the orchestrator's on-disk L2 result cache, so a repeat
run of the benchmarks resolves every simulation from disk (set
``REPRO_NO_DISK_CACHE=1`` to opt out, e.g. when timing the simulator
itself). The cache is salted with a hash of the ``repro`` sources, so
editing the simulator invalidates it automatically.
"""

from __future__ import annotations

import os
import pathlib

import pytest

from repro.experiments.runner import cache_counters, configure_disk_cache

RESULTS_DIR = pathlib.Path(__file__).parent / "results"
SIMCACHE_DIR = RESULTS_DIR / ".simcache"


@pytest.fixture(scope="session", autouse=True)
def _disk_result_cache():
    """Point the runner's L2 at a repo-local cache for the whole session."""
    if os.environ.get("REPRO_NO_DISK_CACHE"):
        configure_disk_cache(None)
        yield
        return
    RESULTS_DIR.mkdir(exist_ok=True)
    configure_disk_cache(SIMCACHE_DIR)
    yield
    counters = cache_counters()
    print(f"\n[simcache] L2 {counters['l2_hits']} hit / "
          f"{counters['l2_misses']} miss at {SIMCACHE_DIR}")
    configure_disk_cache(None)


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Persist an ExperimentResult so EXPERIMENTS.md can cite it."""
    def _record(result):
        path = results_dir / f"{result.experiment_id}.txt"
        path.write_text(result.to_text() + "\n")
        return result
    return _record
