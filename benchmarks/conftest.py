"""Benchmark-suite configuration.

Unlike the unit tests, benchmarks share the run memoizer across files: most
figures reuse the same baseline/PPA runs, and the whole suite would
otherwise re-simulate them dozens of times.
"""

from __future__ import annotations

import pathlib

import pytest

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def record_result(results_dir):
    """Persist an ExperimentResult so EXPERIMENTS.md can cite it."""
    def _record(result):
        path = results_dir / f"{result.experiment_id}.txt"
        path.write_text(result.to_text() + "\n")
        return result
    return _record
