"""Figure 9: PPA and PMEM memory mode vs a volatile DRAM-only system.

Paper: PPA is 16 % and memory mode 14 % slower than a 32 GB DRAM-only
machine; lbm and pc are the worst cases (44 %/58 % for memory mode) because
their poor locality defeats the DRAM cache.
"""

from repro.experiments.figures import run_fig9

LENGTH = 12_000


def test_fig09_vs_dram_only(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig9(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    ppa = result.summary["ppa_gmean"]
    mode = result.summary["memory_mode_gmean"]
    # Shape: the persistence-capable system costs slightly more than the
    # memory mode, which itself is modestly slower than raw DRAM.
    assert 1.0 <= mode < 1.5
    assert ppa >= mode
    by_app = {row[0]: row[2] for row in result.rows}
    friendly = [by_app[a] for a in ("gcc", "sjeng", "hmmer")]
    assert by_app["lbm"] > max(friendly)
    assert by_app["pc"] > max(friendly)
