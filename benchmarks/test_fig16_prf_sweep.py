"""Figure 16: sensitivity to the physical-register-file size.

Paper: with an 80/80 PRF PPA still works but pays ~12 % (some apps ~30 %);
beyond the 180/168 default the benefit saturates (Icelake's 280/224 buys
almost nothing).
"""

from repro.experiments.figures import run_fig16

LENGTH = 8_000


def test_fig16_prf_sweep(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig16(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    small = result.summary["gmean_80_80"]
    default = result.summary["gmean_180_168"]
    icelake = result.summary["gmean_280_224"]
    # Shape: the small PRF hurts; the default is near the knee.
    assert small > default
    assert small > 1.05
    assert abs(icelake - default) < 0.05
