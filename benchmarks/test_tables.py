"""Tables 1, 4, 5, 6 and the Section 7.13 checkpoint-budget analysis."""

import pytest

from repro.experiments.tables import (
    run_sec713,
    run_tab1,
    run_tab4,
    run_tab5,
    run_tab6,
)


def test_tab01_clwb_matrix(benchmark, record_result):
    result = benchmark.pedantic(run_tab1, rounds=1, iterations=1)
    record_result(result)
    ppa_row = next(r for r in result.rows if r[0] == "PPA")
    clwb_row = next(r for r in result.rows if "CLWB" in r[0])
    assert ppa_row[1:] == ["no", "no", "no", "yes"]
    assert clwb_row[1:] == ["yes", "yes", "yes", "no"]


def test_tab04_hw_cost(benchmark, record_result):
    result = benchmark.pedantic(run_tab4, rounds=1, iterations=1)
    record_result(result)
    by_name = {row[0]: row for row in result.rows}
    assert by_name["64-bit LCPC"][1] == pytest.approx(12.20, rel=0.02)
    assert by_name["384-bit MaskReg"][1] == pytest.approx(74.03, rel=0.02)
    assert by_name["40-entry CSQ"][1] == pytest.approx(547.84, rel=0.02)
    assert result.summary["core_area_fraction_pct"] == \
        pytest.approx(0.005, rel=0.15)


def test_tab05_energy(benchmark, record_result):
    result = benchmark.pedantic(run_tab5, rounds=1, iterations=1)
    record_result(result)
    by_scheme = {row[0].split()[0]: row for row in result.rows}
    assert by_scheme["PPA"][2] == pytest.approx(21.7, abs=0.1)
    assert by_scheme["Capri"][2] == pytest.approx(600.0, rel=0.15)
    assert by_scheme["LightPC"][2] == pytest.approx(189_000, rel=0.02)
    assert by_scheme["PPA"][3] == pytest.approx(0.06, abs=0.005)


def test_tab06_wsp_matrix(benchmark, record_result):
    result = benchmark.pedantic(run_tab6, rounds=1, iterations=1)
    record_result(result)
    ppa_row = next(r for r in result.rows if r[0] == "PPA")
    assert ppa_row[1:] == ["low", "low", "no", "yes", "yes", "yes"]
    # No other scheme matches PPA across every column.
    others = [r[1:] for r in result.rows if r[0] != "PPA"]
    assert all(row != ppa_row[1:] for row in others)


def test_sec713_ckpt_latency(benchmark, record_result):
    result = benchmark.pedantic(run_sec713, rounds=1, iterations=1)
    record_result(result)
    assert result.summary["total_bytes"] == 1838.0
    assert result.summary["total_us"] == pytest.approx(0.91, abs=0.02)
    assert result.summary["energy_uj"] == pytest.approx(21.7, abs=0.1)
