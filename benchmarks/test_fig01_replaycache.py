"""Figure 1: ReplayCache's slowdown on a server-class core.

Paper: porting ReplayCache's compiler-formed store-integrity regions to a
server-class core over a deep cache hierarchy costs ~5x on average.
"""

from repro.experiments.figures import run_fig1

LENGTH = 10_000


def test_fig01_replaycache_slowdown(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig1(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    mean = result.summary["gmean_slowdown"]
    # Shape: a multi-x slowdown in the vicinity of the paper's 5x.
    assert 3.0 < mean < 12.0
    # Every single application suffers badly.
    assert all(row[1] > 2.0 for row in result.rows)
