"""Figure 8: run-time overhead of PPA and Capri across all 41 apps.

Paper: PPA incurs 2 % on average while Capri incurs 26 % (11x shorter
regions); rb is among PPA's worst cases.
"""

from repro.experiments.figures import run_fig8

LENGTH = 12_000


def test_fig08_ppa_and_capri_overhead(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig8(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    ppa = result.summary["ppa_gmean"]
    capri = result.summary["capri_gmean"]
    # Shape: PPA single-digit-percent, Capri roughly an order worse.
    assert 1.0 < ppa < 1.10
    assert capri > ppa + 0.05
    assert 1.10 < capri < 1.60
    # PPA never catastrophically slows any app.
    assert max(row[1] for row in result.rows) < 1.5
