"""Figure 19: sensitivity to the thread count on the multicore system.

Paper: scaling the multithreaded apps from 8 to 64 threads (with the WPQ
and shared L2 scaled along) keeps PPA between 2 % and 6 % mean overhead,
drifting upward with synchronization and bandwidth contention.
"""

from repro.experiments.figures import run_fig19

LENGTH = 2_500
THREADS = (8, 16, 32, 64)


def test_fig19_thread_sweep(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig19(threads=THREADS, length=LENGTH),
        rounds=1, iterations=1)
    record_result(result)
    t8 = result.summary["gmean_t8"]
    t64 = result.summary["gmean_t64"]
    # Shape: modest at 8 threads, drifting upward toward 64.
    assert 1.0 <= t8 < 1.10
    assert t64 >= t8 - 0.01
    assert t64 < 1.35
