"""Figure 18: sensitivity to the PMEM write bandwidth.

Paper: at 1 GB/s PPA pays ~7 %; at the empirical default of 2.3 GB/s and
beyond the overhead settles around 2 %.
"""

from repro.experiments.figures import run_fig18

LENGTH = 8_000


def test_fig18_bandwidth_sweep(benchmark, record_result):
    result = benchmark.pedantic(
        lambda: run_fig18(length=LENGTH), rounds=1, iterations=1)
    record_result(result)
    starved = result.summary["gmean_1.0"]
    default = result.summary["gmean_2.3"]
    ample = result.summary["gmean_6.0"]
    assert starved > default >= ample - 0.01
    assert default < 1.15
